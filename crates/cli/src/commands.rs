//! Subcommand implementations.

use crate::args::Args;
use crate::bench_compare::{self, CompareConfig};
use std::io::Write as _;
use yv_blocking::{audit, mfi_blocks, mfi_blocks_recorded, MfiBlocksConfig};
use yv_core::{PersonProfile, PersonQuery, Pipeline, PipelineConfig};
use yv_datagen::{tag_pairs, GenConfig, Generated};
use yv_obs::{chrome_trace, timings_table, MetricsRegistry, Recorder};

type CliResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Emit the recorder's view of the run: a human table on `--timings`, a
/// Chrome-trace file on `--trace-json <path>` (open in `about:tracing` or
/// Perfetto). No-op without either flag.
fn emit_obs(args: &Args, rec: &Recorder) -> CliResult {
    if args.flag("timings") {
        print!("\n{}", timings_table(rec));
    }
    if let Some(path) = args.get("trace-json") {
        std::fs::write(path, chrome_trace(rec)).map_err(err)?;
        println!("wrote trace to {path}");
    }
    Ok(())
}

/// Build the dataset a command operates on.
fn dataset(args: &Args) -> Result<Generated, String> {
    let records: usize = args.parse_or("records", 2_000, "integer").map_err(err)?;
    let seed: u64 = args.parse_or("seed", 7, "integer").map_err(err)?;
    let config = if args.flag("italy") {
        GenConfig { n_records: records, ..GenConfig::italy(seed) }
    } else {
        GenConfig::random(records, seed)
    };
    Ok(config.generate())
}

fn blocking_config(args: &Args) -> Result<MfiBlocksConfig, String> {
    let ng: f64 = args.parse_or("ng", 3.0, "number").map_err(err)?;
    let max_minsup: u64 = args.parse_or("max-minsup", 5, "integer").map_err(err)?;
    Ok(MfiBlocksConfig::expert_weighting().with_ng(ng).with_max_minsup(max_minsup))
}

pub fn generate(args: &Args) -> CliResult {
    let gen = dataset(args)?;
    let stats = yv_records::PatternStats::analyze(&gen.dataset);
    println!("records:           {}", gen.dataset.len());
    println!("persons:           {}", gen.persons.len());
    println!("sources:           {}", gen.dataset.sources().len());
    println!("distinct items:    {}", gen.dataset.interner().len());
    println!("data patterns:     {}", stats.distinct_patterns());
    println!("gold match pairs:  {}", gen.gold_pair_count());
    println!("\nitem-type prevalence:");
    for p in yv_records::patterns::prevalence(&gen.dataset) {
        println!("  {:<18} {:>6.1}%", p.agg.label(), p.fraction * 100.0);
    }
    Ok(())
}

pub fn export(args: &Args) -> CliResult {
    let Some(path) = args.get("path") else {
        return Err("export requires --path <file.csv>".to_owned());
    };
    let gen = dataset(args)?;
    let truth: Vec<u64> =
        gen.dataset.record_ids().map(|rid| gen.person_of(rid).0).collect();
    let text = yv_records::csv::write_dataset(&gen.dataset, Some(&truth));
    std::fs::write(path, text).map_err(err)?;
    println!("wrote {} records to {path}", gen.dataset.len());
    Ok(())
}

/// Print the statistics of an externally supplied CSV dataset — the
/// adoption path for running the toolkit on real data.
pub fn import(args: &Args) -> CliResult {
    let Some(path) = args.get("path") else {
        return Err("import requires --path <file.csv>".to_owned());
    };
    let text = std::fs::read_to_string(path).map_err(err)?;
    let (ds, truth) = yv_records::csv::read_dataset(&text).map_err(err)?;
    println!("records:        {}", ds.len());
    println!("sources:        {}", ds.sources().len());
    println!("distinct items: {}", ds.interner().len());
    println!("ground truth:   {}", if truth.is_some() { "present" } else { "absent" });
    let result = mfi_blocks(&ds, &MfiBlocksConfig::expert_weighting());
    println!("MFIBlocks:      {} blocks, {} candidate pairs", result.blocks.len(),
        result.candidate_pairs.len());
    if let Some(truth) = truth {
        let mut by_person: std::collections::HashMap<u64, Vec<yv_records::RecordId>> =
            std::collections::HashMap::new();
        for rid in ds.record_ids() {
            by_person.entry(truth[rid.index()]).or_default().push(rid);
        }
        let gold: std::collections::HashSet<(yv_records::RecordId, yv_records::RecordId)> =
            by_person
                .values()
                .flat_map(|rs| {
                    rs.iter().enumerate().flat_map(move |(i, &a)| {
                        rs[i + 1..].iter().map(move |&b| if a < b { (a, b) } else { (b, a) })
                    })
                })
                .collect();
        let tp = result.candidate_pairs.iter().filter(|p| gold.contains(*p)).count();
        println!(
            "vs ground truth: recall {:.3}, precision {:.3}",
            tp as f64 / gold.len().max(1) as f64,
            tp as f64 / result.candidate_pairs.len().max(1) as f64
        );
    }
    Ok(())
}

pub fn block(args: &Args) -> CliResult {
    let gen = dataset(args)?;
    let config = blocking_config(args)?;
    let rec = Recorder::monotonic();
    let result = mfi_blocks_recorded(&gen.dataset, &config, &rec);
    let gold: std::collections::HashSet<_> = gen.matching_pairs().into_iter().collect();
    let tp = result.candidate_pairs.iter().filter(|p| gold.contains(*p)).count();
    println!("blocks:          {}", result.blocks.len());
    println!("candidate pairs: {}", result.candidate_pairs.len());
    println!("mining time:     {:?}", result.stats.mining_time);
    println!("iterations:      {}", result.stats.iterations);
    println!(
        "vs ground truth: recall {:.3}, precision {:.3}",
        tp as f64 / gold.len().max(1) as f64,
        tp as f64 / result.candidate_pairs.len().max(1) as f64
    );
    let diag = audit(&gen.dataset, &result, config.ng, 64);
    println!(
        "CS/SN audit:     compact {:.0}% of {} blocks (margin {:+.3}), \
         sparse {:.0}%, max neighbors {}",
        diag.compact_fraction * 100.0,
        diag.audited_blocks,
        diag.mean_compact_margin,
        diag.sparse_fraction * 100.0,
        diag.max_neighbors
    );
    emit_obs(args, &rec)
}

/// Train a pipeline on oracle-tagged blocking output.
fn trained(gen: &Generated, config: &PipelineConfig) -> Pipeline {
    let blocked = mfi_blocks(&gen.dataset, &config.blocking);
    let tags = tag_pairs(gen, &blocked.candidate_pairs, 1);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    Pipeline::train(&gen.dataset, &labelled, config)
}

/// Client mode of `yv resolve`: ask a running server to fuzzy-resolve a
/// (possibly misspelled) name into ranked person candidates.
fn resolve_remote(args: &Args) -> CliResult {
    let Some(name) = args.get("name") else {
        return Err("resolve --addr mode requires --name <query>".to_owned());
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let k = match args.get("k") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| "option --k: expects a positive integer".to_owned())?,
        ),
        None => None,
    };
    let min = match args.get("min") {
        Some(v) => {
            Some(v.parse::<f64>().map_err(|_| "option --min: expects a number".to_owned())?)
        }
        None => None,
    };
    let mut client = yv_store::Client::connect(addr).map_err(err)?;
    let hits = client.resolve(name, k, min).map_err(err)?;
    println!("{} candidate(s) for {name:?}", hits.len());
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "  #{:<2} score={:.4}  {:<16} entity of {} report(s)",
            rank + 1,
            hit.score,
            hit.name,
            hit.members.len()
        );
    }
    Ok(())
}

pub fn resolve(args: &Args) -> CliResult {
    if args.get("name").is_some() || args.get("addr").is_some() {
        return resolve_remote(args);
    }
    let gen = dataset(args)?;
    let certainty: f64 = args.parse_or("certainty", 0.0, "number").map_err(err)?;
    let config = PipelineConfig { blocking: blocking_config(args)?, ..PipelineConfig::default() };
    let pipeline = trained(&gen, &config);
    let rec = Recorder::monotonic();
    let resolution = pipeline.resolve_recorded(&gen.dataset, &config, &rec);
    let entities = resolution.entities(certainty);
    let merged: usize = entities.iter().map(Vec::len).sum();
    println!("scored matches:        {}", resolution.matches.len());
    println!("entities @ {certainty}: {} (covering {merged} records)", entities.len());
    let above: Vec<_> = resolution.at_certainty(certainty).collect();
    let correct = above.iter().filter(|m| gen.is_match(m.a, m.b)).count();
    println!(
        "match purity @ {certainty}: {:.1}% of {} matches",
        100.0 * correct as f64 / above.len().max(1) as f64,
        above.len()
    );
    emit_obs(args, &rec)
}

/// Read two bench JSON files and gate on the comparison: print the
/// per-metric report, fail (nonzero exit from `main`) when any metric
/// regresses past the configured threshold.
fn compare_files(baseline: &str, current: &str, config: &CompareConfig) -> CliResult {
    let old = bench_compare::parse_flat_json(&std::fs::read_to_string(baseline).map_err(err)?)
        .map_err(|e| format!("{baseline}: {e}"))?;
    let new = bench_compare::parse_flat_json(&std::fs::read_to_string(current).map_err(err)?)
        .map_err(|e| format!("{current}: {e}"))?;
    let report = bench_compare::compare(&old, &new, config)?;
    print!("{}", report.render());
    if report.regressions > 0 {
        return Err(format!("{} regression(s) vs baseline {baseline}", report.regressions));
    }
    Ok(())
}

/// Run the full pipeline under the recorder and write the stage timings
/// as machine-readable JSON (fixed field order, so diffs between runs and
/// commits stay meaningful). With `--compare OLD.json` the fresh run is
/// gated against a baseline; with `--compare OLD.json --against NEW.json`
/// no pipeline runs at all — the two files are compared as they stand.
pub fn bench(args: &Args) -> CliResult {
    let threshold: f64 = args.parse_or("threshold", 1.5, "number").map_err(err)?;
    let min_delta: u64 = args.parse_or("min-delta", 10_000, "integer").map_err(err)?;
    let gate = CompareConfig { threshold, min_delta };
    let baseline = args.get("compare").map(str::to_owned);
    if let Some(current) = args.get("against") {
        let Some(baseline) = baseline else {
            return Err("--against requires --compare BASELINE.json".to_owned());
        };
        return compare_files(&baseline, current, &gate);
    }

    let out = args.get("out").unwrap_or("BENCH_pipeline.json").to_owned();
    let records: usize = args.parse_or("records", 2_000, "integer").map_err(err)?;
    let seed: u64 = args.parse_or("seed", 7, "integer").map_err(err)?;
    let rec = Recorder::monotonic();
    let registry = MetricsRegistry::new();

    let total = rec.span("total");
    let preprocess = rec.span("preprocess");
    let gen = dataset(args)?;
    preprocess.finish();

    let config = PipelineConfig { blocking: blocking_config(args)?, ..PipelineConfig::default() };
    let train = rec.span("train");
    let pipeline = trained(&gen, &config);
    train.finish();

    let resolution = pipeline.resolve_published(&gen.dataset, &config, &rec, &registry);
    total.finish();
    let peak = registry.gauge("yv_pipeline_peak_alloc_bytes", "").get();

    let (add_single_us, add_multi_us) = bench_concurrent_adds(&gen, &pipeline, &config, &registry)?;
    let (resolve_summary, resolve_candidates) =
        bench_resolve(&gen, &pipeline, &config, &registry)?;
    let (trace_disabled_us, trace_enabled_us) =
        bench_trace_overhead(&gen, &pipeline, &config, &registry)?;
    let (serve_text_per_s, serve_binary_per_s) =
        bench_serve_protocols(&gen, &pipeline, &config, &registry)?;

    const STAGES: &[&str] =
        &["preprocess", "train", "blocking", "extract", "score", "resolve", "total"];
    let mut json = String::from("{\n  \"schema\": \"yv-bench-pipeline/v2\",\n");
    json.push_str(&format!("  \"records\": {records},\n  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"sources\": {},\n", gen.dataset.sources().len()));
    json.push_str(&format!("  \"scored_matches\": {},\n", resolution.matches.len()));
    json.push_str(&format!("  \"peak_alloc_bytes\": {peak},\n"));
    json.push_str("  \"stages_us\": {\n");
    for (i, stage) in STAGES.iter().enumerate() {
        let comma = if i + 1 == STAGES.len() { "" } else { "," };
        json.push_str(&format!("    \"{stage}\": {}{comma}\n", rec.sum_ns(stage) / 1_000));
    }
    json.push_str("  },\n  \"counters\": {\n");
    let counters = rec.counters();
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 == counters.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    json.push_str("  },\n  \"metrics\": {\n");
    let metrics = registry.scalar_values();
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, json).map_err(err)?;

    println!("resolved {records} records: {} scored matches", resolution.matches.len());
    for stage in STAGES {
        println!("  {:<12} {:>9} us", stage, rec.sum_ns(stage) / 1_000);
    }
    println!("peak alloc:   {peak} bytes");
    println!(
        "concurrent ADD (4 threads, {BENCH_ADD_ARRIVALS} arrivals): \
         1 shard {add_single_us} us, 4 shards {add_multi_us} us"
    );
    println!(
        "RESOLVE ({} queries): p50 {} us, p99 {} us, max {} us, \
         {resolve_candidates} candidates examined",
        resolve_summary.count, resolve_summary.p50_us, resolve_summary.p99_us,
        resolve_summary.max_us
    );
    println!(
        "trace capture overhead: QUERY p50 {trace_enabled_us} us traced \
         vs {trace_disabled_us} us untraced"
    );
    println!(
        "serve transports ({BENCH_SERVE_ARRIVALS} ADDs): text {serve_text_per_s} req/s, \
         binary BATCH_ADD x{BENCH_SERVE_BATCH} {serve_binary_per_s} req/s"
    );
    println!("wrote {out}");
    emit_obs(args, &rec)?;
    match baseline {
        Some(baseline) => compare_files(&baseline, &out, &gate),
        None => Ok(()),
    }
}

/// Writer threads in the concurrent-ADD bench stage, and the shard count
/// of its multi-shard store.
const BENCH_ADD_THREADS: usize = 4;
/// Arrivals each store absorbs in the concurrent-ADD bench stage.
const BENCH_ADD_ARRIVALS: usize = 120;

/// The store stage of `yv bench`: fill a 1-shard and a 4-shard store
/// with the same arrivals from 4 writer threads, timing each fill.
/// Single-shard writers serialize on one WAL (lock + fsync each);
/// multi-shard writers fsync distinct WALs concurrently — the published
/// `yv_store_concurrent_add_{single,multi}_us` gauges are the regression
/// guard on that advantage.
fn bench_concurrent_adds(
    gen: &Generated,
    pipeline: &Pipeline,
    config: &PipelineConfig,
    registry: &MetricsRegistry,
) -> Result<(u64, u64), String> {
    use yv_obs::Clock as _;
    let ds = &gen.dataset;
    // Arrivals are clones of corpus records under fresh book ids: real
    // name shapes, so shard routing spreads like production data.
    let n = u32::try_from(ds.len()).map_err(err)?;
    let arrivals: Vec<yv_records::Record> = (0..BENCH_ADD_ARRIVALS)
        .map(|i| {
            let mut r = ds.record(yv_records::RecordId(i as u32 % n)).clone();
            r.book_id = 900_000 + i as u64;
            r
        })
        .collect();
    let clone_ds = || clone_dataset(ds);
    let clock = yv_obs::MonotonicClock::new();
    let mut timings = [0u64; 2];
    for (slot, shards) in [(0usize, 1usize), (1, BENCH_ADD_THREADS)] {
        let dir = std::env::temp_dir().join("yv-bench-store").join(format!("{shards}-shard"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).map_err(err)?;
        let resolver = yv_core::IncrementalResolver::bootstrap(
            clone_ds(),
            pipeline.clone(),
            config.clone(),
            yv_core::IncrementalConfig::default(),
        );
        let store = yv_store::Store::create(&dir, resolver, shards).map_err(err)?;
        let started = clock.now_nanos();
        std::thread::scope(|scope| {
            for t in 0..BENCH_ADD_THREADS {
                let store = &store;
                let arrivals = &arrivals;
                scope.spawn(move || {
                    for record in arrivals.iter().skip(t).step_by(BENCH_ADD_THREADS) {
                        // Failures surface through the count check below.
                        let _ = store.add_record(record.clone());
                    }
                });
            }
        });
        timings[slot] = clock.now_nanos().saturating_sub(started) / 1_000;
        if store.stats().wal_entries != BENCH_ADD_ARRIVALS {
            return Err("concurrent-ADD bench lost arrivals".to_owned());
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    registry.set_gauge(
        "yv_store_concurrent_add_single_us",
        "4-thread ADD fill of a 1-shard store",
        timings[0],
    );
    registry.set_gauge(
        "yv_store_concurrent_add_multi_us",
        "4-thread ADD fill of a 4-shard store",
        timings[1],
    );
    Ok((timings[0], timings[1]))
}

/// Dataset is intentionally not Clone; rebuild it source-by-source so a
/// bench store starts from a resolver identical to the pipeline's.
fn clone_dataset(ds: &yv_records::Dataset) -> yv_records::Dataset {
    let mut out = yv_records::Dataset::new();
    for s in ds.sources() {
        out.add_source(s.clone());
    }
    for rid in ds.record_ids() {
        out.add_record(ds.record(rid).clone());
    }
    out
}

/// Rounds the resolve bench replays its probe battery for, so the
/// latency histogram has enough samples for stable percentiles.
const BENCH_RESOLVE_ROUNDS: usize = 3;

/// The RESOLVE stage of `yv bench`: build a 4-shard store over the bench
/// corpus and time fuzzy resolution of deterministically misspelled
/// corpus names. Publishes `yv_resolve_p50_us` / `yv_resolve_p99_us`
/// (ratio-gated latency) and `yv_resolve_candidates` (candidate names
/// examined — a pure function of the corpus, so the compare gate pins
/// the pruning behaviour exactly).
fn bench_resolve(
    gen: &Generated,
    pipeline: &Pipeline,
    config: &PipelineConfig,
    registry: &MetricsRegistry,
) -> Result<(yv_obs::LatencySummary, u64), String> {
    use yv_obs::Clock as _;
    let ds = &gen.dataset;
    // One probe per stride-th record: its first last name, lowercased,
    // with one deterministic edit (substitute or delete the middle
    // character, alternating) — the clerical-error shapes the fuzzy
    // index is built to absorb.
    let stride = (ds.len() / 16).max(1);
    let mut probes: Vec<String> = Vec::new();
    for i in (0..ds.len()).step_by(stride) {
        let record = ds.record(yv_records::RecordId(i as u32));
        let Some(last) = record.last_names.first() else { continue };
        let mut chars: Vec<char> = last.to_lowercase().chars().collect();
        let mid = chars.len() / 2;
        if chars.len() > 2 {
            if probes.len().is_multiple_of(2) {
                chars[mid] = 'x';
            } else {
                chars.remove(mid);
            }
        }
        probes.push(chars.into_iter().collect());
    }
    if probes.is_empty() {
        return Err("resolve bench found no probe names".to_owned());
    }

    let dir = std::env::temp_dir().join("yv-bench-store").join("resolve");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(err)?;
    let resolver = yv_core::IncrementalResolver::bootstrap(
        clone_dataset(ds),
        pipeline.clone(),
        config.clone(),
        yv_core::IncrementalConfig::default(),
    );
    let store = yv_store::Store::create(&dir, resolver, BENCH_ADD_THREADS).map_err(err)?;

    let clock = yv_obs::MonotonicClock::new();
    let hist = yv_obs::Histogram::new();
    let options = yv_store::ResolveOptions::default();
    let mut candidates = 0u64;
    for _ in 0..BENCH_RESOLVE_ROUNDS {
        for probe in &probes {
            let started = clock.now_nanos();
            let outcome = store.resolve(probe, &options);
            hist.record_ns(clock.now_nanos().saturating_sub(started));
            candidates += outcome.examined;
        }
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    let summary = hist.summary();
    registry.set_gauge(
        "yv_resolve_p50_us",
        "Median RESOLVE latency over the misspelled-probe battery",
        summary.p50_us,
    );
    registry.set_gauge(
        "yv_resolve_p99_us",
        "p99 RESOLVE latency over the misspelled-probe battery",
        summary.p99_us,
    );
    registry.set_gauge(
        "yv_resolve_max_us",
        "Worst single RESOLVE latency over the misspelled-probe battery",
        summary.max_us,
    );
    registry.set_gauge(
        "yv_resolve_candidates",
        "Candidate names examined across the battery (deterministic)",
        candidates,
    );
    Ok((summary, candidates))
}

/// Rounds of the trace-overhead stage; the per-mode p50 is the best
/// across rounds, squeezing out scheduler noise.
const BENCH_TRACE_ROUNDS: usize = 3;
/// Battery repetitions per round, so each round's histogram has enough
/// samples for a stable median.
const BENCH_TRACE_REPS: usize = 4;

/// The tracing stage of `yv bench`: run the same QUERY battery against a
/// 4-shard store with request-trace capture enabled (span recording plus
/// a push into the lock-free ring, exactly the server's hot path) and
/// with a disabled [`yv_obs::TraceCtx`] (every trace call early-returns).
/// A third mode layers the windowed-telemetry rollup on top of the traced
/// path — histogram record plus a [`yv_obs::WindowedHistogram`] rotation
/// per request, the server's worst case (the ticker normally amortizes
/// rotations). Publishes `yv_trace_overhead_{enabled,disabled}_p50_us`
/// and `yv_window_rollup_p50_us`, and fails the bench when capture costs
/// more than 5% of the untraced QUERY p50, or the windowed rollup more
/// than 5% of the traced p50 (plus an absolute floor so micro-latency
/// jitter cannot flake).
fn bench_trace_overhead(
    gen: &Generated,
    pipeline: &Pipeline,
    config: &PipelineConfig,
    registry: &MetricsRegistry,
) -> Result<(u64, u64), String> {
    use yv_obs::Clock as _;
    let ds = &gen.dataset;
    // Last-name queries over corpus names: the same shard fan-out shape
    // the server traces in production.
    let stride = (ds.len() / 16).max(1);
    let battery: Vec<PersonQuery> = (0..ds.len())
        .step_by(stride)
        .filter_map(|i| {
            let record = ds.record(yv_records::RecordId(i as u32));
            record.last_names.first().map(|last| PersonQuery {
                last_name: Some(last.clone()),
                ..PersonQuery::default()
            })
        })
        .collect();
    if battery.is_empty() {
        return Err("trace-overhead bench found no query names".to_owned());
    }

    let dir = std::env::temp_dir().join("yv-bench-store").join("trace-overhead");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(err)?;
    let resolver = yv_core::IncrementalResolver::bootstrap(
        clone_dataset(ds),
        pipeline.clone(),
        config.clone(),
        yv_core::IncrementalConfig::default(),
    );
    let store = yv_store::Store::create(&dir, resolver, BENCH_ADD_THREADS).map_err(err)?;

    let clock = yv_obs::MonotonicClock::new();
    let trace_clock: std::sync::Arc<dyn yv_obs::Clock> =
        std::sync::Arc::new(yv_obs::MonotonicClock::new());
    // Tail threshold u64::MAX: the ring still takes every capture, the
    // reservoir copies nothing — the steady-state fast path.
    let sink = yv_obs::TraceSink::new(
        yv_store::DEFAULT_TRACE_CAPACITY,
        u64::MAX,
        yv_store::DEFAULT_TRACE_SEED,
        true,
    );
    // The windowed mode's rollup target: a histogram observed by a
    // WindowedHistogram, rotated on every request (worst case).
    let window_hist = std::sync::Arc::new(yv_obs::Histogram::new());
    let windows = yv_obs::WindowedHistogram::new(
        std::sync::Arc::clone(&window_hist),
        std::sync::Arc::clone(&trace_clock),
    );
    // best[0] = capture disabled, best[1] = capture enabled,
    // best[2] = capture enabled + windowed rollup.
    let mut best = [u64::MAX; 3];
    for _ in 0..BENCH_TRACE_ROUNDS {
        for (slot, enabled) in [(0usize, false), (1, true), (2, true)] {
            let hist = yv_obs::Histogram::new();
            for _ in 0..BENCH_TRACE_REPS {
                for query in &battery {
                    let started = clock.now_nanos();
                    if enabled {
                        let mut trace = yv_obs::TraceCtx::start(
                            sink.next_id(),
                            0,
                            std::sync::Arc::clone(&trace_clock),
                        );
                        trace.set_command("QUERY");
                        let hits = store.query_traced(query, &mut trace);
                        trace.annotate("hits", hits.len() as u64);
                        if let Some(done) = trace.finish(true) {
                            sink.capture(done);
                        }
                    } else {
                        let mut trace = yv_obs::TraceCtx::disabled();
                        let _hits = store.query_traced(query, &mut trace);
                    }
                    let elapsed = clock.now_nanos().saturating_sub(started);
                    if slot == 2 {
                        window_hist.record_ns(elapsed);
                        let _ = windows.rotate();
                    }
                    hist.record_ns(clock.now_nanos().saturating_sub(started));
                }
            }
            best[slot] = best[slot].min(hist.summary().p50_us);
        }
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    registry.set_gauge(
        "yv_trace_overhead_disabled_p50_us",
        "QUERY p50 with trace capture disabled (battery, best of 3)",
        best[0],
    );
    registry.set_gauge(
        "yv_trace_overhead_enabled_p50_us",
        "QUERY p50 with trace capture + ring push enabled (battery, best of 3)",
        best[1],
    );
    registry.set_gauge(
        "yv_window_rollup_p50_us",
        "QUERY p50 traced + windowed rollup with per-request rotation (battery, best of 3)",
        best[2],
    );
    // 5% of the untraced p50, floored at 100us: capture is a bounded
    // stack write plus one seqlock slot copy, and must stay invisible.
    let allowed = best[0] + (best[0] / 20).max(100);
    if best[1] > allowed {
        return Err(format!(
            "trace capture overhead regression: QUERY p50 {} us traced vs {} us untraced \
             (allowed {} us)",
            best[1], best[0], allowed
        ));
    }
    // Same discipline for the windowed rollup: one histogram record plus
    // one (usually no-op) rotation must stay within 5% of the traced p50.
    let allowed = best[1] + (best[1] / 20).max(100);
    if best[2] > allowed {
        return Err(format!(
            "windowed rollup overhead regression: QUERY p50 {} us windowed vs {} us traced \
             (allowed {} us)",
            best[2], best[1], allowed
        ));
    }
    Ok((best[0], best[1]))
}

/// Arrivals each transport pushes through the serve bench stage.
const BENCH_SERVE_ARRIVALS: usize = 768;
/// Records per `BATCH_ADD` frame in the binary serve stage — the batch
/// size the 3x acceptance gate is defined at.
const BENCH_SERVE_BATCH: usize = 256;
/// `BATCH_ADD` frames the binary serve stage keeps in flight at once.
const BENCH_SERVE_WINDOW: usize = 4;

/// The transport stage of `yv bench`: start a real `yv serve` over a
/// 4-shard store and push the same arrival stream through each wire —
/// per-request text `ADD`s on one connection, pipelined binary
/// `BATCH_ADD` frames (batch = [`BENCH_SERVE_BATCH`]) on another with a
/// fresh identical store. Publishes records/second for both as
/// `yv_serve_text_req_per_s` / `yv_serve_binary_req_per_s` (rate-gated
/// by the compare gate) plus the raw `*_elapsed_us` timings. The binary
/// wire must clear 3x the text rate in-process: below that, batching has
/// stopped paying for its framing and the stage fails the bench.
fn bench_serve_protocols(
    gen: &Generated,
    pipeline: &Pipeline,
    config: &PipelineConfig,
    registry: &MetricsRegistry,
) -> Result<(u64, u64), String> {
    use yv_obs::Clock as _;
    let clock = yv_obs::MonotonicClock::new();
    let book_base: u64 = 800_000;
    let mut rates = [0u64; 2];
    let mut elapsed = [0u64; 2];
    for (slot, mode) in [(0usize, "text"), (1, "binary")] {
        let dir = std::env::temp_dir().join("yv-bench-store").join(format!("serve-{mode}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).map_err(err)?;
        let resolver = yv_core::IncrementalResolver::bootstrap(
            clone_dataset(&gen.dataset),
            pipeline.clone(),
            config.clone(),
            yv_core::IncrementalConfig::default(),
        );
        let store = yv_store::Store::create(&dir, resolver, BENCH_ADD_THREADS).map_err(err)?;
        let records_before = store.stats().records;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").map_err(err)?;
        let addr = listener.local_addr().map_err(err)?;
        let server =
            std::thread::spawn(move || yv_store::ServeOptions::new(store).workers(2).serve(listener));

        let started = clock.now_nanos();
        let mut acked = 0usize;
        if slot == 1 {
            let mut client = yv_store::ClientOptions::new()
                .protocol(yv_store::Protocol::Binary)
                .connect(addr)
                .map_err(err)?;
            let mut pipe = client.pipeline(BENCH_SERVE_WINDOW);
            for start in (0..BENCH_SERVE_ARRIVALS).step_by(BENCH_SERVE_BATCH) {
                let chunk: Vec<_> = (start..(start + BENCH_SERVE_BATCH).min(BENCH_SERVE_ARRIVALS))
                    .map(|i| load_record(book_base, i))
                    .collect();
                pipe.push(&yv_store::RequestFrame::BatchAdd(chunk)).map_err(err)?;
            }
            for reply in pipe.flush().map_err(err)? {
                for status in reply.batch().map_err(err)? {
                    match status {
                        yv_store::BatchStatus::Ok { .. } => acked += 1,
                        yv_store::BatchStatus::Err(e) => {
                            return Err(format!("serve bench BATCH_ADD refused a record: {e}"))
                        }
                    }
                }
            }
        } else {
            let mut client = yv_store::Client::connect(addr).map_err(err)?;
            for i in 0..BENCH_SERVE_ARRIVALS {
                client.add(&load_record(book_base, i)).map_err(err)?;
                acked += 1;
            }
        }
        elapsed[slot] = clock.now_nanos().saturating_sub(started) / 1_000;
        if acked != BENCH_SERVE_ARRIVALS {
            return Err(format!(
                "serve bench ({mode}) acked {acked} of {BENCH_SERVE_ARRIVALS} arrivals"
            ));
        }
        let mut closer = yv_store::Client::connect(addr).map_err(err)?;
        closer.shutdown().map_err(err)?;
        let store = server
            .join()
            .map_err(|_| "serve bench server panicked".to_owned())?
            .map_err(err)?;
        if store.stats().records != records_before + BENCH_SERVE_ARRIVALS {
            return Err(format!("serve bench ({mode}) lost arrivals"));
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
        let per_s =
            (BENCH_SERVE_ARRIVALS as u128 * 1_000_000) / u128::from(elapsed[slot].max(1));
        rates[slot] = u64::try_from(per_s).unwrap_or(u64::MAX);
    }
    registry.set_gauge(
        "yv_serve_text_req_per_s",
        "Per-request text ADD throughput over one serve connection",
        rates[0],
    );
    registry.set_gauge(
        "yv_serve_binary_req_per_s",
        "Pipelined binary BATCH_ADD throughput (batch=256) over one serve connection",
        rates[1],
    );
    registry.set_gauge(
        "yv_serve_text_elapsed_us",
        "Wall time for the text half of the serve transport stage",
        elapsed[0],
    );
    registry.set_gauge(
        "yv_serve_binary_elapsed_us",
        "Wall time for the binary half of the serve transport stage",
        elapsed[1],
    );
    if rates[1] < rates[0].saturating_mul(3) {
        return Err(format!(
            "binary transport regression: BATCH_ADD {} req/s is under 3x the per-request \
             text ADD {} req/s",
            rates[1], rates[0]
        ));
    }
    Ok((rates[0], rates[1]))
}

pub fn query(args: &Args) -> CliResult {
    let gen = dataset(args)?;
    let certainty: f64 = args.parse_or("certainty", 0.0, "number").map_err(err)?;
    let config = PipelineConfig::default();
    let pipeline = trained(&gen, &config);
    let resolution = pipeline.resolve(&gen.dataset, &config);
    let q = PersonQuery {
        first_name: args.get("first").map(str::to_owned),
        last_name: args.get("last").map(str::to_owned),
        certainty,
        ..PersonQuery::default()
    };
    if q.first_name.is_none() && q.last_name.is_none() {
        return Err("query requires --first and/or --last".to_owned());
    }
    let hits = q.run(&gen.dataset, &resolution);
    println!("{} hit(s)", hits.len());
    for hit in hits.iter().take(10) {
        let r = gen.dataset.record(hit.seed);
        println!(
            "  BookID {:>8}  {} {}  -> entity of {} report(s)",
            r.book_id,
            r.first_names.join("/"),
            r.last_names.join("/"),
            hit.entity.len()
        );
    }
    Ok(())
}

pub fn narrate(args: &Args) -> CliResult {
    let gen = dataset(args)?;
    let top: usize = args.parse_or("top", 3, "integer").map_err(err)?;
    let config = PipelineConfig::default();
    let pipeline = trained(&gen, &config);
    let resolution = pipeline.resolve(&gen.dataset, &config);
    let mut entities = resolution.entities(0.5);
    entities.sort_by_key(|e| std::cmp::Reverse(e.len()));
    for entity in entities.iter().take(top) {
        let profile = PersonProfile::build(&gen.dataset, entity);
        println!("{}\n", profile.narrative());
    }
    Ok(())
}

/// Bootstrap or reopen the store behind `yv serve` / `yv snapshot`: an
/// existing store directory is opened (snapshot + per-shard WAL replay;
/// the shard count comes from its manifest, `--shards` is ignored);
/// otherwise a synthetic dataset is generated, a pipeline trained, and a
/// fresh store initialized at the directory with `--shards` shards.
fn open_or_bootstrap(args: &Args, dir: &std::path::Path) -> Result<yv_store::Store, String> {
    if dir.join(yv_store::SNAPSHOT_FILE).exists() {
        return yv_store::Store::open(dir).map_err(err);
    }
    let shards: usize = args.parse_or("shards", 1, "integer").map_err(err)?;
    let gen = dataset(args)?;
    let config = PipelineConfig { blocking: blocking_config(args)?, ..PipelineConfig::default() };
    let pipeline = trained(&gen, &config);
    let resolver = yv_core::IncrementalResolver::bootstrap(
        gen.dataset,
        pipeline,
        config,
        yv_core::IncrementalConfig::default(),
    );
    yv_store::Store::create(dir, resolver, shards).map_err(err)
}

pub fn serve(args: &Args) -> CliResult {
    let Some(dir) = args.get("dir") else {
        return Err("serve requires --dir <store-directory>".to_owned());
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let workers: usize = args.parse_or("workers", 4, "integer").map_err(err)?;
    let map_cache: usize = args
        .parse_or("map-cache", yv_store::DEFAULT_ENTITY_MAP_CAPACITY, "integer")
        .map_err(err)?;
    let slow_us = match args.get("slow-us") {
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            "option --slow-us: expects an integer (microseconds)".to_owned()
        })?),
        None => None,
    };
    let trace_ring: usize = args
        .parse_or("trace-ring", yv_store::DEFAULT_TRACE_CAPACITY, "integer")
        .map_err(err)?;
    let metrics_listener = match args.get("metrics-addr") {
        Some(a) => Some(std::net::TcpListener::bind(a).map_err(err)?),
        None => None,
    };
    let slo_rules = match args.get("slo") {
        Some(v) => v
            .split(',')
            .map(|chunk| yv_obs::SloRule::parse(chunk.trim()))
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let telemetry_dir = args.get("telemetry-dir").map(std::path::PathBuf::from);
    let store = open_or_bootstrap(args, std::path::Path::new(dir))?;
    store.set_entity_map_capacity(map_cache);
    let stats = store.stats();
    let listener = std::net::TcpListener::bind(addr).map_err(err)?;
    println!(
        "serving {} records ({} ranked matches, {} shard{}) on {} with {workers} workers",
        stats.records,
        stats.matches,
        stats.shards.len(),
        if stats.shards.len() == 1 { "" } else { "s" },
        listener.local_addr().map_err(err)?
    );
    if let Some(l) = &metrics_listener {
        println!("metrics: http://{}/metrics", l.local_addr().map_err(err)?);
    }
    println!("commands: QUERY RESOLVE ADD STATS METRICS TOP TRACE HISTORY SNAPSHOT SHUTDOWN");
    let mut options = yv_store::ServeOptions::new(store)
        .workers(workers)
        .trace_ring(trace_ring)
        .trace_capture(!args.flag("no-trace"))
        .slo(slo_rules);
    if let Some(us) = slow_us {
        options = options.slow_us(us);
    }
    if let Some(telemetry_dir) = telemetry_dir {
        // The slow-request log moves next to the telemetry segments (size-
        // capped JSONL, one rotated generation) instead of spamming stderr.
        if slow_us.is_some() {
            options = options.slow_log_file(telemetry_dir.join("slow.jsonl"));
        }
        options = options.telemetry_dir(telemetry_dir);
    }
    if let Some(l) = metrics_listener {
        options = options.metrics_listener(l);
    }
    let store = options.serve(listener).map_err(err)?;
    println!("shut down cleanly; {} records snapshotted", store.stats().records);
    Ok(())
}

pub fn snapshot(args: &Args) -> CliResult {
    let Some(dir) = args.get("dir") else {
        return Err("snapshot requires --dir <store-directory>".to_owned());
    };
    let store = yv_store::Store::open(std::path::Path::new(dir)).map_err(err)?;
    let pending = store.stats().wal_entries;
    store.snapshot().map_err(err)?;
    let stats = store.stats();
    println!(
        "folded {pending} WAL entr{} into {dir}/{}: {} records, {} matches",
        if pending == 1 { "y" } else { "ies" },
        yv_store::SNAPSHOT_FILE,
        stats.records,
        stats.matches
    );
    Ok(())
}

/// Render a `TOP` report as the `yv top` dashboard. Pure — equal reports
/// render byte-identically, so tests pin the output exactly.
fn render_top(report: &yv_store::TopReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let r = &report.ring;
    let _ = writeln!(
        out,
        "trace ring: {}/{} resident, {} captured, {} evicted, {} tail-sampled",
        r.occupancy, r.capacity, r.captured, r.evicted, r.sampled
    );
    if r.last_slow != 0 {
        let _ = writeln!(out, "last slow trace: {:016x}", r.last_slow);
    }
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "COMMAND", "COUNT", "ERRORS", "MEAN_US", "P50_US", "P95_US", "P99_US", "MAX_US"
    );
    for c in &report.commands {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
            c.name, c.count, c.errors, c.mean_us, c.p50_us, c.p95_us, c.p99_us, c.max_us
        );
    }
    if !report.slow.is_empty() {
        let _ = writeln!(out, "recent slow requests (newest first):");
        for s in &report.slow {
            let _ = writeln!(
                out,
                "  trace={:016x} {:<8} {} conn={} total_us={} spans={}",
                s.trace,
                s.command,
                if s.ok { "ok " } else { "err" },
                s.conn,
                s.total_ns / 1_000,
                s.spans
            );
        }
    }
    out
}

/// Eight-level block characters indexed low to high; zero renders as the
/// lowest block so gaps stay visible in a run of busy epochs.
const SPARK_BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render counts as a unicode sparkline, scaled to the largest value.
/// Pure: equal inputs render byte-identically.
fn sparkline(counts: &[u64]) -> String {
    let max = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&n| {
            if max == 0 || n == 0 {
                SPARK_BLOCKS[0]
            } else {
                // 1..=7, so any non-zero count clears the zero glyph.
                SPARK_BLOCKS[(n * 7).div_ceil(max).min(7) as usize]
            }
        })
        .collect()
}

/// The per-epoch request counts of a `HISTORY` report over its full
/// window, oldest first, absent epochs filled with zero.
fn history_counts(report: &yv_store::HistoryReport) -> Vec<u64> {
    let lo = report.now_epoch.saturating_sub(report.window as u64);
    (lo..report.now_epoch)
        .map(|epoch| {
            report
                .buckets
                .iter()
                .find(|b| b.epoch == epoch)
                .map_or(0, |b| b.count)
        })
        .collect()
}

/// Render the windowed-telemetry section of the `yv top` dashboard: one
/// sparkline per active command plus one status line per SLO rule. Pure —
/// equal reports render byte-identically, so tests pin the output exactly.
fn render_top_history(reports: &[yv_store::HistoryReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let active: Vec<_> = reports.iter().filter(|r| r.summary.count > 0).collect();
    if !active.is_empty() {
        let _ = writeln!(out, "windows (last 60s, newest right):");
        for r in &active {
            let _ = writeln!(
                out,
                "  {:<10} {} {:>6} reqs  p50={}us p99={}us",
                r.metric,
                sparkline(&history_counts(r)),
                r.summary.count,
                r.summary.p50_us,
                r.summary.p99_us
            );
        }
    }
    let mut seen = std::collections::HashSet::new();
    for r in reports {
        for s in &r.slo {
            if !seen.insert((s.metric.clone(), s.threshold_us, s.window)) {
                continue;
            }
            let _ = writeln!(
                out,
                "  slo {:<8} p{} < {}us over {}s: {} (burn {}%/{}% long/short)",
                s.metric,
                (s.p * 100.0).round() as u64,
                s.threshold_us,
                s.window,
                s.state,
                s.burn_long_pct,
                s.burn_short_pct
            );
        }
    }
    out
}

/// Live introspection of a running server: one `TOP` exchange rendered
/// as a dashboard, or a 2-second refresh loop with `--watch`.
pub fn top(args: &Args) -> CliResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let k = match args.get("k") {
        Some(v) => Some(
            v.parse::<usize>().map_err(|_| "option --k: expects an integer".to_owned())?,
        ),
        None => None,
    };
    let mut client = yv_store::Client::connect(addr).map_err(err)?;
    loop {
        let report = client.top(k).map_err(err)?;
        print!("{}", render_top(&report));
        // One HISTORY fetch per command the server has actually seen; the
        // renderer drops idle ones, so a quiet server adds no lines.
        let mut histories = Vec::new();
        for c in report.commands.iter().filter(|c| c.count > 0) {
            histories.push(client.history(&c.name.to_lowercase(), None, None).map_err(err)?);
        }
        print!("{}", render_top_history(&histories));
        if !args.flag("watch") {
            return Ok(());
        }
        println!();
        std::thread::sleep(std::time::Duration::from_secs(2));
    }
}

/// Deterministic arrival pool for `yv load`: enough last-name variety
/// that a sharded store routes the batch across every shard.
fn load_record(book_base: u64, i: usize) -> yv_records::Record {
    const FIRST: [&str; 6] = ["Guido", "Sara", "Moshe", "Rivka", "David", "Chana"];
    const LAST: [&str; 11] = [
        "Foa", "Levi", "Postel", "Roth", "Katz", "Blum", "Stern", "Weiss", "Adler", "Braun",
        "Segal",
    ];
    yv_records::RecordBuilder::new(book_base + i as u64, yv_records::SourceId(0))
        .first_name(FIRST[i % FIRST.len()])
        .last_name(LAST[(i * 7) % LAST.len()])
        .build()
}

/// The fixed query battery `yv load` digests: the answers depend only on
/// the store's logical state, so equal digests mean equal states.
fn load_battery() -> Vec<PersonQuery> {
    ["Foa", "Levi", "Katz", "Stern", "Segal"]
        .iter()
        .flat_map(|last| {
            [0.0, 0.5].into_iter().map(move |certainty| PersonQuery {
                last_name: Some((*last).to_owned()),
                certainty,
                ..PersonQuery::default()
            })
        })
        .collect()
}

/// One `yv load` worker's share of the arrivals, over the binary
/// transport: `HELLO`-negotiated connection, records chunked into
/// `BATCH_ADD` frames of `batch`, frames pipelined with a bounded
/// in-flight window. Returns the summed per-record match counts.
fn load_binary_worker(
    addr: &str,
    t: usize,
    threads: usize,
    adds: usize,
    batch: usize,
    book_base: u64,
) -> Result<usize, String> {
    let mut client = yv_store::ClientOptions::new()
        .protocol(yv_store::Protocol::Binary)
        .connect(addr)
        .map_err(err)?;
    let mut pipe = client.pipeline(LOAD_PIPELINE_WINDOW);
    let mut chunk = Vec::with_capacity(batch);
    for i in (t..adds).step_by(threads) {
        chunk.push(load_record(book_base, i));
        if chunk.len() == batch {
            pipe.push(&yv_store::RequestFrame::BatchAdd(std::mem::take(&mut chunk)))
                .map_err(err)?;
        }
    }
    if !chunk.is_empty() {
        pipe.push(&yv_store::RequestFrame::BatchAdd(chunk)).map_err(err)?;
    }
    let mut matched = 0usize;
    for reply in pipe.flush().map_err(err)? {
        for status in reply.batch().map_err(err)? {
            match status {
                yv_store::BatchStatus::Ok { matches } => matched += matches as usize,
                yv_store::BatchStatus::Err(e) => {
                    return Err(format!("BATCH_ADD refused a record: {e}"))
                }
            }
        }
    }
    Ok(matched)
}

/// `BATCH_ADD` frames each `yv load --binary` connection keeps in
/// flight at once.
const LOAD_PIPELINE_WINDOW: usize = 4;

/// Drive a running `yv serve` instance through the typed TCP client:
/// optionally fire concurrent ADDs over several connections (per-request
/// text lines by default; `--binary` negotiates the framed transport and
/// streams `BATCH_ADD` frames of `--batch` records), then print the
/// server's stats line and a digest of a fixed query battery (equal
/// digests ⇔ equal logical state), optionally sending SHUTDOWN. This is
/// the client half of ci.sh's sharded smoke test.
pub fn load(args: &Args) -> CliResult {
    let Some(addr) = args.get("addr") else {
        return Err("load requires --addr <host:port>".to_owned());
    };
    let adds: usize = args.parse_or("adds", 0, "integer").map_err(err)?;
    let threads: usize = args.parse_or("threads", 4, "integer").map_err(err)?.max(1);
    let book_base: u64 = args.parse_or("book-base", 900_000, "integer").map_err(err)?;
    let binary = args.flag("binary");
    let batch: usize = args.parse_or("batch", 256, "integer").map_err(err)?.max(1);
    if adds > 0 {
        let matched = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || -> Result<usize, String> {
                        if binary {
                            return load_binary_worker(addr, t, threads, adds, batch, book_base);
                        }
                        let mut client = yv_store::Client::connect(addr).map_err(err)?;
                        let mut matched = 0;
                        for i in (t..adds).step_by(threads) {
                            matched += client.add(&load_record(book_base, i)).map_err(err)?;
                        }
                        Ok(matched)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("load worker panicked".to_owned())))
                .sum::<Result<usize, String>>()
        })?;
        let wire = if binary { format!("binary BATCH_ADD x{batch}") } else { "text ADD".to_owned() };
        println!("added {adds} records over {threads} connections via {wire} ({matched} matched)");
    }
    // With --binary the stats/battery connection upgrades too, so the
    // printed digest proves QUERY decodes identically on both wires
    // (ci.sh compares it against a text run over the same store).
    let protocol =
        if binary { yv_store::Protocol::Binary } else { yv_store::Protocol::Text };
    let mut client =
        yv_store::ClientOptions::new().protocol(protocol).connect(addr).map_err(err)?;
    let stats = client.stats().map_err(err)?;
    println!(
        "records={} shards={} wal={} wal_bytes={}",
        stats.records, stats.shards, stats.wal_entries, stats.wal_bytes
    );
    let mut transcript = String::new();
    for query in load_battery() {
        for hit in client.query(&query).map_err(err)? {
            use std::fmt::Write as _;
            let _ = write!(transcript, "{}:{:?};", hit.seed.0, hit.entity);
        }
        transcript.push('\n');
    }
    println!("battery digest: {:016x}", yv_store::codec::fnv1a64(transcript.as_bytes()));
    if args.flag("shutdown") {
        client.shutdown().map_err(err)?;
        println!("sent SHUTDOWN");
    }
    Ok(())
}

pub fn reproduce(args: &Args) -> CliResult {
    let scale = if args.flag("quick") {
        yv_eval::Scale::quick()
    } else {
        yv_eval::Scale::default()
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for report in yv_eval::run_all(&scale) {
        writeln!(out, "{}\n", report.render()).map_err(err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_for(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()), &["italy", "quick"]).unwrap()
    }

    #[test]
    fn generate_runs() {
        let args = args_for(&["generate", "--records", "200", "--seed", "3"]);
        generate(&args).unwrap();
    }

    #[test]
    fn block_runs_and_reports() {
        let args = args_for(&["block", "--records", "300", "--ng", "2.0"]);
        block(&args).unwrap();
    }

    #[test]
    fn export_writes_csv() {
        let path = std::env::temp_dir().join("yv_cli_export_test.csv");
        let path_str = path.to_string_lossy().into_owned();
        let args = args_for(&["export", "--records", "50", "--path", &path_str]);
        export(&args).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.lines().count() > 10);
        assert!(content.starts_with("book_id,"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bench_writes_machine_readable_json() {
        let path = std::env::temp_dir().join("yv_cli_bench_test.json");
        let path_str = path.to_string_lossy().into_owned();
        let args = args_for(&["bench", "--records", "250", "--out", &path_str]);
        bench(&args).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"schema\": \"yv-bench-pipeline/v2\""));
        assert!(content.contains("\"stages_us\""));
        assert!(content.contains("\"blocking\":"));
        assert!(content.contains("\"total\":"));
        assert!(content.contains("\"peak_alloc_bytes\":"));
        assert!(content.contains("\"pairs_scored\":"));
        assert!(content.contains("\"yv_pipeline_stage_blocking_us\":"));
        assert!(content.contains("\"yv_resolve_p50_us\":"));
        assert!(content.contains("\"yv_resolve_p99_us\":"));
        assert!(content.contains("\"yv_resolve_max_us\":"));
        assert!(content.contains("\"yv_resolve_candidates\":"));
        assert!(content.contains("\"yv_trace_overhead_disabled_p50_us\":"));
        assert!(content.contains("\"yv_trace_overhead_enabled_p50_us\":"));
        assert!(content.contains("\"yv_window_rollup_p50_us\":"));
        assert!(content.contains("\"yv_serve_text_req_per_s\":"));
        assert!(content.contains("\"yv_serve_binary_req_per_s\":"));
        assert!(content.contains("\"yv_serve_text_elapsed_us\":"));
        assert!(content.contains("\"yv_serve_binary_elapsed_us\":"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn top_dashboard_renders_byte_identically() {
        let report = yv_store::TopReport {
            ring: yv_store::RingRow {
                capacity: 512,
                occupancy: 3,
                captured: 3,
                evicted: 0,
                sampled: 1,
                last_slow: 0x00ab_00cd_00ef_0011,
            },
            commands: vec![
                yv_store::client::CommandRow {
                    name: "QUERY".to_owned(),
                    count: 25,
                    errors: 0,
                    mean_us: 91,
                    p50_us: 128,
                    p95_us: 256,
                    p99_us: 256,
                    max_us: 227,
                },
                yv_store::client::CommandRow {
                    name: "RESOLVE".to_owned(),
                    count: 1,
                    errors: 1,
                    mean_us: 24,
                    p50_us: 24,
                    p95_us: 24,
                    p99_us: 24,
                    max_us: 24,
                },
            ],
            slow: vec![yv_store::SlowRow {
                trace: 0x00ab_00cd_00ef_0011,
                command: "RESOLVE".to_owned(),
                ok: true,
                conn: 3,
                total_ns: 24_500,
                spans: 5,
            }],
        };
        assert_eq!(
            render_top(&report),
            "trace ring: 3/512 resident, 3 captured, 0 evicted, 1 tail-sampled\n\
             last slow trace: 00ab00cd00ef0011\n\
             COMMAND       COUNT  ERRORS  MEAN_US  P50_US  P95_US  P99_US  MAX_US\n\
             QUERY            25       0       91     128     256     256     227\n\
             RESOLVE           1       1       24      24      24      24      24\n\
             recent slow requests (newest first):\n  \
             trace=00ab00cd00ef0011 RESOLVE  ok  conn=3 total_us=24 spans=5\n"
        );
        // An idle ring (nothing sampled yet) omits the slow sections.
        let idle = yv_store::TopReport {
            ring: yv_store::RingRow::default(),
            commands: Vec::new(),
            slow: Vec::new(),
        };
        let rendered = render_top(&idle);
        assert!(rendered.starts_with("trace ring: 0/0 resident"), "{rendered}");
        assert!(!rendered.contains("last slow trace"), "{rendered}");
        assert!(!rendered.contains("recent slow"), "{rendered}");
    }

    #[test]
    fn top_history_sparklines_and_slo_lines_render_byte_identically() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[1, 1]), "██");
        let report = yv_store::HistoryReport {
            metric: "query".to_owned(),
            tier: "s".to_owned(),
            window: 8,
            now_epoch: 9,
            summary: yv_store::HistorySummaryRow {
                count: 13,
                mean_us: 40,
                p50_us: 24,
                p95_us: 100,
                p99_us: 100,
                min_us: 10,
                max_us: 100,
            },
            slo: vec![yv_store::HistorySloRow {
                metric: "query".to_owned(),
                p: 0.99,
                threshold_us: 50_000,
                window: 60,
                short_window: 10,
                state: "ok".to_owned(),
                burn_long_pct: 0,
                burn_short_pct: 0,
            }],
            buckets: vec![
                yv_store::HistoryBucketRow {
                    epoch: 2, count: 1, mean_us: 10, p50_us: 10, max_us: 10,
                },
                yv_store::HistoryBucketRow {
                    epoch: 5, count: 4, mean_us: 20, p50_us: 20, max_us: 30,
                },
                yv_store::HistoryBucketRow {
                    epoch: 8, count: 8, mean_us: 60, p50_us: 24, max_us: 100,
                },
            ],
        };
        // Window covers epochs 1..9; gaps render as the lowest block.
        assert_eq!(
            render_top_history(std::slice::from_ref(&report)),
            "windows (last 60s, newest right):\n  \
             query      ▁▂▁▁▅▁▁█     13 reqs  p50=24us p99=100us\n  \
             slo query    p99 < 50000us over 60s: ok (burn 0%/0% long/short)\n"
        );
        // An idle metric adds no sparkline, but its SLO line still shows.
        let idle = yv_store::HistoryReport { summary: Default::default(), buckets: Vec::new(),
            ..report };
        let rendered = render_top_history(&[idle]);
        assert!(!rendered.contains("windows ("), "{rendered}");
        assert!(rendered.contains("slo query"), "{rendered}");
        assert_eq!(render_top_history(&[]), "");
    }

    #[test]
    fn bench_compare_passes_on_self_and_fails_on_injected_regression() {
        let path = std::env::temp_dir().join("yv_cli_bench_cmp_base.json");
        let path_str = path.to_string_lossy().into_owned();
        let args = args_for(&["bench", "--records", "250", "--out", &path_str]);
        bench(&args).unwrap();

        // Pure-file mode against itself: zero deltas, zero regressions.
        let args =
            args_for(&["bench", "--compare", &path_str, "--against", &path_str]);
        bench(&args).unwrap();

        // Inflate the total stage well past the ratio and the floor.
        let content = std::fs::read_to_string(&path).unwrap();
        let prefix = "    \"total\": ";
        let slowed: String = content
            .lines()
            .map(|line| match line.strip_prefix(prefix) {
                Some(rest) => {
                    let n: u64 = rest.trim_end_matches(',').parse().unwrap();
                    let comma = if rest.ends_with(',') { "," } else { "" };
                    format!("{prefix}{}{comma}\n", n * 3 + 50_000)
                }
                None => format!("{line}\n"),
            })
            .collect();
        let slow_path = std::env::temp_dir().join("yv_cli_bench_cmp_slow.json");
        let slow_str = slow_path.to_string_lossy().into_owned();
        std::fs::write(&slow_path, slowed).unwrap();
        let args = args_for(&["bench", "--compare", &path_str, "--against", &slow_str]);
        let msg = bench(&args).unwrap_err();
        assert!(msg.contains("regression"), "{msg}");

        // --against without a baseline is a usage error.
        let args = args_for(&["bench", "--against", &path_str]);
        assert!(bench(&args).is_err());
        std::fs::remove_file(path).ok();
        std::fs::remove_file(slow_path).ok();
    }

    #[test]
    fn query_requires_a_name() {
        let args = args_for(&["query", "--records", "200"]);
        assert!(query(&args).is_err());
    }
}
