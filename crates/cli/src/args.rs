//! A small dependency-free argument parser: `--key value` and `--flag`
//! options after a subcommand.

use std::collections::HashMap;

/// Parsed command line: subcommand plus options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parsing errors, rendered to the user as usage messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    MissingCommand,
    DanglingOption(String),
    BadValue { option: String, value: String, expected: &'static str },
    UnknownOption { command: String, option: String, known: String },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given"),
            ArgError::DanglingOption(o) => write!(f, "option {o} expects a value"),
            ArgError::BadValue { option, value, expected } => {
                write!(f, "option {option}: '{value}' is not a valid {expected}")
            }
            ArgError::UnknownOption { command, option, known } => {
                if known.is_empty() {
                    write!(f, "'{command}' takes no options, got --{option}")
                } else {
                    write!(f, "'{command}' does not take --{option}; it accepts: {known}")
                }
            }
        }
    }
}

impl Args {
    /// Parse raw arguments (without the program name). Options look like
    /// `--records 2000`; bare `--flag`s are recognized from the given
    /// list.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        known_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut it = raw.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(token) = it.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError::DanglingOption(token));
            };
            if known_flags.contains(&name) {
                flags.push(name.to_owned());
                continue;
            }
            let value = it.next().ok_or_else(|| ArgError::DanglingOption(token.clone()))?;
            options.insert(name.to_owned(), value);
        }
        Ok(Args { command, options, flags })
    }

    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Reject any parsed option or flag the current command does not
    /// declare, so a typo like `--reccords` fails loudly with the list of
    /// accepted options instead of being silently ignored.
    pub fn reject_unknown(
        &self,
        valid_options: &[&str],
        valid_flags: &[&str],
    ) -> Result<(), ArgError> {
        let unknown = self
            .options
            .keys()
            .find(|name| !valid_options.contains(&name.as_str()))
            .or_else(|| self.flags.iter().find(|name| !valid_flags.contains(&name.as_str())));
        match unknown {
            None => Ok(()),
            Some(option) => {
                let known: Vec<String> = valid_options
                    .iter()
                    .map(|o| format!("--{o} <value>"))
                    .chain(valid_flags.iter().map(|f| format!("--{f}")))
                    .collect();
                Err(ArgError::UnknownOption {
                    command: self.command.clone(),
                    option: option.clone(),
                    known: known.join(", "),
                })
            }
        }
    }

    /// A typed option with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: format!("--{name}"),
                value: v.clone(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()), &["italy", "quick"])
    }

    #[test]
    fn parses_command_options_and_flags() {
        let args = parse(&["block", "--records", "500", "--ng", "3.5", "--italy"]).unwrap();
        assert_eq!(args.command, "block");
        assert_eq!(args.get("records"), Some("500"));
        assert!(args.flag("italy"));
        assert!(!args.flag("quick"));
        assert_eq!(args.parse_or("ng", 3.0, "number"), Ok(3.5));
        assert_eq!(args.parse_or("seed", 7u64, "integer"), Ok(7));
    }

    #[test]
    fn missing_command_errors() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn dangling_option_errors() {
        assert!(matches!(parse(&["block", "--records"]), Err(ArgError::DanglingOption(_))));
        assert!(matches!(parse(&["block", "bare"]), Err(ArgError::DanglingOption(_))));
    }

    #[test]
    fn bad_value_errors() {
        let args = parse(&["block", "--records", "many"]).unwrap();
        assert!(matches!(
            args.parse_or("records", 10usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_options_are_rejected_with_the_valid_list() {
        let args = parse(&["block", "--reccords", "500", "--italy"]).unwrap();
        let err = args.reject_unknown(&["records", "ng"], &["italy"]).unwrap_err();
        let ArgError::UnknownOption { command, option, known } = &err else {
            panic!("{err:?}")
        };
        assert_eq!(command, "block");
        assert_eq!(option, "reccords");
        assert!(known.contains("--records <value>"));
        assert!(known.contains("--italy"));
        // The declared set passes.
        let ok = parse(&["block", "--records", "500", "--italy"]).unwrap();
        assert_eq!(ok.reject_unknown(&["records", "ng"], &["italy"]), Ok(()));
    }

    #[test]
    fn misplaced_flags_are_rejected() {
        let args = parse(&["generate", "--quick"]).unwrap();
        assert!(matches!(
            args.reject_unknown(&["records"], &["italy"]),
            Err(ArgError::UnknownOption { .. })
        ));
    }
}
