//! Regression gating over `yv bench` JSON: parse two benchmark files into
//! flat key/value lists and compare them metric by metric.
//!
//! The bench writer emits one key per line with fixed formatting, so a
//! line-based parser is enough — no JSON dependency. Nested objects
//! flatten with dotted keys (`stages_us.blocking`). Metrics fall into two
//! classes:
//!
//! - **noisy** — keys whose last segment ends in `_us`, `_ns` or
//!   `_bytes`. Timings and memory readings vary run to run, so they gate
//!   on a ratio threshold with an absolute floor: a regression needs
//!   `new > old * threshold` *and* `new - old >= min_delta`. Improvements
//!   always pass.
//! - **rate** — keys whose last segment ends in `_per_s` (the serve
//!   transport throughputs). Higher is better, so the gate flips: a
//!   regression needs `new < old / threshold` *and* `old - new >=
//!   min_delta`. Improvements always pass.
//! - **exact** — everything else (counters, match totals, the schema
//!   string). The pipeline is deterministic for a given `records`/`seed`,
//!   so any drift in these is a real behaviour change and fails
//!   immediately.
//!
//! `records` and `seed` must match between the two files; comparing
//! benchmarks of different workloads is an error, not a pass.

/// One parsed benchmark value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Int(u64),
    Text(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

/// Gate knobs: ratio threshold and absolute floor for noisy metrics.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// A noisy metric regresses when `new > old * threshold` ...
    pub threshold: f64,
    /// ... and the absolute delta is at least this many units (µs/bytes),
    /// so microsecond jitter on tiny stages never trips the gate.
    pub min_delta: u64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig { threshold: 1.5, min_delta: 10_000 }
    }
}

/// Parse a `yv bench` JSON file into flat `(dotted_key, value)` pairs, in
/// file order. Only the shape the bench writer emits is accepted: one
/// `"key": value` per line, nested objects opened by `"key": {`.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, Value)>, String> {
    let mut out = Vec::new();
    let mut path: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" {
            continue;
        }
        if line == "}" {
            path.pop();
            continue;
        }
        let Some((key_part, value_part)) = line.split_once(':') else {
            return Err(format!("line {}: expected \"key\": value, got {raw:?}", lineno + 1));
        };
        let key = key_part.trim().trim_matches('"').to_owned();
        let value = value_part.trim();
        if value == "{" {
            path.push(key);
            continue;
        }
        let dotted = if path.is_empty() { key } else { format!("{}.{key}", path.join(".")) };
        let parsed = if let Ok(n) = value.parse::<u64>() {
            Value::Int(n)
        } else {
            Value::Text(value.trim_matches('"').to_owned())
        };
        out.push((dotted, parsed));
    }
    if !path.is_empty() {
        return Err(format!("unterminated object {:?}", path.join(".")));
    }
    Ok(out)
}

/// Whether a metric gates on the ratio threshold (timings and byte
/// counts) rather than exact equality. Any path segment carrying a
/// noisy-unit suffix marks the whole key: `stages_us.score` is a timing
/// even though the leaf is just the stage name.
fn is_noisy(key: &str) -> bool {
    key.split('.')
        .any(|seg| seg.ends_with("_us") || seg.ends_with("_ns") || seg.ends_with("_bytes"))
}

/// Whether a metric is a throughput rate (higher is better): any path
/// segment ending in `_per_s`. These gate like noisy metrics but with
/// the direction reversed — a *drop* past the threshold regresses.
fn is_rate(key: &str) -> bool {
    key.split('.').any(|seg| seg.ends_with("_per_s"))
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    pub key: String,
    pub old: Value,
    pub new: Value,
    pub regression: bool,
    /// Human-readable verdict for the report line.
    pub note: String,
}

/// The full comparison: every shared metric plus the regression count.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    pub deltas: Vec<Delta>,
    pub regressions: usize,
}

impl CompareReport {
    /// Render one line per compared metric, regressions first-class.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let marker = if d.regression { "REGRESSION" } else { "ok" };
            out.push_str(&format!(
                "{marker:>10}  {:<40} {} -> {}  {}\n",
                d.key, d.old, d.new, d.note
            ));
        }
        out.push_str(&format!(
            "{} metric(s) compared, {} regression(s)\n",
            self.deltas.len(),
            self.regressions
        ));
        out
    }
}

fn lookup<'a>(kvs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Compare a new benchmark against a baseline. Returns an error (not a
/// report) when the files are not comparable at all: different workload
/// (`records`/`seed`), different schema, or a baseline metric missing
/// from the new run.
pub fn compare(
    baseline: &[(String, Value)],
    current: &[(String, Value)],
    config: &CompareConfig,
) -> Result<CompareReport, String> {
    for key in ["schema", "records", "seed"] {
        let old = lookup(baseline, key);
        let new = lookup(current, key);
        if old.is_none() || new.is_none() || old != new {
            return Err(format!(
                "benchmarks are not comparable: {key} differs ({} vs {})",
                old.map_or_else(|| "missing".to_owned(), ToString::to_string),
                new.map_or_else(|| "missing".to_owned(), ToString::to_string),
            ));
        }
    }
    let mut report = CompareReport::default();
    for (key, old) in baseline {
        if ["schema", "records", "seed"].contains(&key.as_str()) {
            continue;
        }
        let Some(new) = lookup(current, key) else {
            return Err(format!("metric {key} present in baseline but missing from new run"));
        };
        let (regression, note) = judge(key, old, new, config);
        if regression {
            report.regressions += 1;
        }
        report.deltas.push(Delta {
            key: key.clone(),
            old: old.clone(),
            new: new.clone(),
            regression,
            note,
        });
    }
    Ok(report)
}

/// Classify one metric's movement.
fn judge(key: &str, old: &Value, new: &Value, config: &CompareConfig) -> (bool, String) {
    match (old, new) {
        (Value::Int(o), Value::Int(n)) if is_rate(key) => {
            if n >= o {
                return (false, "improved or equal".to_owned());
            }
            let delta = o - n;
            let under_ratio = (*n as f64) < (*o as f64) / config.threshold;
            if under_ratio && delta >= config.min_delta {
                (
                    true,
                    format!(
                        "-{delta} drops past 1/{}x threshold (floor {})",
                        config.threshold, config.min_delta
                    ),
                )
            } else {
                (false, format!("-{delta} within threshold"))
            }
        }
        (Value::Int(o), Value::Int(n)) if is_noisy(key) => {
            if n <= o {
                return (false, "improved or equal".to_owned());
            }
            let delta = n - o;
            let over_ratio = (*n as f64) > (*o as f64) * config.threshold;
            if over_ratio && delta >= config.min_delta {
                (
                    true,
                    format!(
                        "+{delta} exceeds {}x threshold (floor {})",
                        config.threshold, config.min_delta
                    ),
                )
            } else {
                (false, format!("+{delta} within threshold"))
            }
        }
        _ => {
            if old == new {
                (false, "exact match".to_owned())
            } else {
                (true, "deterministic metric changed".to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "yv-bench-pipeline/v2",
  "records": 250,
  "seed": 7,
  "scored_matches": 812,
  "peak_alloc_bytes": 1048576,
  "stages_us": {
    "blocking": 52000,
    "score": 9000,
    "total": 400000
  },
  "counters": {
    "pairs_scored": 3100
  }
}
"#;

    #[test]
    fn parser_flattens_nested_objects() {
        let kvs = parse_flat_json(SAMPLE).unwrap();
        assert_eq!(
            lookup(&kvs, "schema"),
            Some(&Value::Text("yv-bench-pipeline/v2".to_owned()))
        );
        assert_eq!(lookup(&kvs, "stages_us.blocking"), Some(&Value::Int(52_000)));
        assert_eq!(lookup(&kvs, "counters.pairs_scored"), Some(&Value::Int(3_100)));
        assert_eq!(lookup(&kvs, "peak_alloc_bytes"), Some(&Value::Int(1_048_576)));
        assert!(lookup(&kvs, "stages_us").is_none(), "group keys are not values");
    }

    #[test]
    fn self_comparison_has_zero_regressions() {
        let kvs = parse_flat_json(SAMPLE).unwrap();
        let report = compare(&kvs, &kvs, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 0);
        assert!(!report.deltas.is_empty());
        assert!(report.render().contains("0 regression(s)"));
    }

    #[test]
    fn doubled_timing_past_the_floor_is_a_regression() {
        let old = parse_flat_json(SAMPLE).unwrap();
        let doubled = SAMPLE.replace("\"total\": 400000", "\"total\": 800000");
        let new = parse_flat_json(&doubled).unwrap();
        let report = compare(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 1, "{}", report.render());
        assert!(report.render().contains("REGRESSION"));
        assert!(report.render().contains("stages_us.total"));
    }

    #[test]
    fn small_absolute_jitter_passes_even_past_the_ratio() {
        // 9000µs -> 15000µs is >1.5x but under the 10ms floor.
        let old = parse_flat_json(SAMPLE).unwrap();
        let jitter = SAMPLE.replace("\"score\": 9000", "\"score\": 15000");
        let new = parse_flat_json(&jitter).unwrap();
        let report = compare(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 0, "{}", report.render());
        // Timing improvements always pass.
        let faster = SAMPLE.replace("\"blocking\": 52000", "\"blocking\": 1000");
        let new = parse_flat_json(&faster).unwrap();
        assert_eq!(compare(&old, &new, &CompareConfig::default()).unwrap().regressions, 0);
    }

    const RATE_SAMPLE: &str = r#"{
  "schema": "yv-bench-pipeline/v2",
  "records": 250,
  "seed": 7,
  "metrics": {
    "yv_serve_binary_req_per_s": 90000,
    "yv_serve_text_req_per_s": 20000
  }
}
"#;

    #[test]
    fn throughput_drop_past_the_threshold_is_a_regression() {
        let old = parse_flat_json(RATE_SAMPLE).unwrap();
        // 90000 -> 30000 req/s is worse than 1/1.5x and past the floor.
        let collapsed =
            RATE_SAMPLE.replace("\"yv_serve_binary_req_per_s\": 90000", "\"yv_serve_binary_req_per_s\": 30000");
        let new = parse_flat_json(&collapsed).unwrap();
        let report = compare(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 1, "{}", report.render());
        assert!(report.render().contains("yv_serve_binary_req_per_s"));
    }

    #[test]
    fn throughput_gains_and_small_dips_pass() {
        let old = parse_flat_json(RATE_SAMPLE).unwrap();
        // A rate increase is an improvement, never a regression.
        let faster =
            RATE_SAMPLE.replace("\"yv_serve_text_req_per_s\": 20000", "\"yv_serve_text_req_per_s\": 90000");
        let new = parse_flat_json(&faster).unwrap();
        assert_eq!(compare(&old, &new, &CompareConfig::default()).unwrap().regressions, 0);
        // 20000 -> 14000 is past 1/1.5x but under the 10000 floor.
        let dip =
            RATE_SAMPLE.replace("\"yv_serve_text_req_per_s\": 20000", "\"yv_serve_text_req_per_s\": 14000");
        let new = parse_flat_json(&dip).unwrap();
        let report = compare(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 0, "{}", report.render());
    }

    #[test]
    fn deterministic_counter_drift_is_a_regression() {
        let old = parse_flat_json(SAMPLE).unwrap();
        let drifted = SAMPLE.replace("\"pairs_scored\": 3100", "\"pairs_scored\": 3101");
        let new = parse_flat_json(&drifted).unwrap();
        let report = compare(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(report.regressions, 1);
    }

    #[test]
    fn different_workloads_are_incomparable() {
        let old = parse_flat_json(SAMPLE).unwrap();
        let other = SAMPLE.replace("\"seed\": 7", "\"seed\": 8");
        let new = parse_flat_json(&other).unwrap();
        assert!(compare(&old, &new, &CompareConfig::default()).is_err());
        // A vanished baseline metric is also an error, not a silent pass.
        let missing = SAMPLE.replace("    \"pairs_scored\": 3100\n", "");
        let new = parse_flat_json(&missing).unwrap();
        assert!(compare(&old, &new, &CompareConfig::default()).is_err());
    }
}
