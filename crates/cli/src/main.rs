//! `yv` — command-line interface to the uncertain-ER reproduction.
//!
//! ```text
//! yv generate --records 2000 --seed 7 [--italy]      dataset summary
//! yv export   --records 2000 --seed 7 --path out.csv records as CSV
//! yv block    --records 2000 [--ng 3.0] [--max-minsup 5] [--italy]
//! yv resolve  --records 2000 [--certainty 0.0] [--italy]
//! yv query    --first Guido --last Foa [--certainty 0.0] [--records N]
//! yv narrate  --records 2000 [--top 3]
//! yv reproduce [--quick]                             all tables & figures
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "yv — multi-source uncertain entity resolution (Sagi et al., SIGMOD'16 reproduction)

USAGE:
    yv <command> [options]

COMMANDS:
    generate   generate a synthetic Names-Project dataset and print its statistics
    export     write generated records to a CSV file (--path required)
    import     read a CSV dataset, print statistics and block it (--path required)
    block      run MFIBlocks and print blocks, pairs, and CS/SN diagnostics
    resolve    train the ADT ranker and resolve; print quality vs ground truth
    query      relative search with a certainty knob (--first / --last)
    narrate    print narratives for the best-attested resolved entities
    reproduce  regenerate every table and figure of the paper (--quick for a smoke run)

COMMON OPTIONS:
    --records N     dataset size (default 2000)
    --seed N        generator seed (default 7)
    --italy         use the Italy-set configuration (incl. the MV submitter)
    --ng X          MFIBlocks neighborhood growth (default 3.0)
    --max-minsup N  MFIBlocks MaxMinSup (default 5)
    --certainty X   query-time certainty threshold (default 0.0)
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw, &["italy", "quick", "help"]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "export" => commands::export(&args),
        "import" => commands::import(&args),
        "block" => commands::block(&args),
        "resolve" => commands::resolve(&args),
        "query" => commands::query(&args),
        "narrate" => commands::narrate(&args),
        "reproduce" => commands::reproduce(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
