//! `yv` — command-line interface to the uncertain-ER reproduction.
//!
//! ```text
//! yv generate --records 2000 --seed 7 [--italy]      dataset summary
//! yv export   --records 2000 --seed 7 --path out.csv records as CSV
//! yv block    --records 2000 [--ng 3.0] [--max-minsup 5] [--italy]
//! yv resolve  --records 2000 [--certainty 0.0] [--italy]
//! yv resolve  --addr 127.0.0.1:7878 --name Lewi [--k 5] [--min 0.3]
//! yv pipeline ...                                    alias for resolve
//! yv bench    --records 2000 [--out BENCH_pipeline.json] [--compare OLD.json]
//! yv query    --first Guido --last Foa [--certainty 0.0] [--records N]
//! yv narrate  --records 2000 [--top 3]
//! yv serve    --dir people.store [--shards 4] [--addr 127.0.0.1:7878]
//!             [--workers 4] [--metrics-addr 127.0.0.1:9100] [--slow-us 50000]
//!             [--telemetry-dir DIR] [--slo p99<50000/60]
//! yv snapshot --dir people.store                     fold the WALs into the snapshot
//! yv top      --addr 127.0.0.1:7878 [--k 5] [--watch] live server introspection
//! yv load     --addr 127.0.0.1:7878 [--adds 24 --threads 4] [--binary [--batch N]] [--shutdown]
//! yv reproduce [--quick]                             all tables & figures
//! yv audit    check|fix-baseline [--format human|json|sarif] [--jobs N]
//! ```
//!
//! `block`, `resolve`/`pipeline` and `bench` accept `--timings` (print a
//! per-stage table) and `--trace-json <path>` (write a Chrome-trace file,
//! loadable in `about:tracing` / Perfetto). `bench --compare` gates the
//! run against a baseline JSON and exits nonzero on regression.

mod args;
mod bench_compare;
mod commands;

use args::Args;

const USAGE: &str = "yv — multi-source uncertain entity resolution (Sagi et al., SIGMOD'16 reproduction)

USAGE:
    yv <command> [options]

COMMANDS:
    generate   generate a synthetic Names-Project dataset and print its statistics
    export     write generated records to a CSV file (--path required)
    import     read a CSV dataset, print statistics and block it (--path required)
    block      run MFIBlocks and print blocks, pairs, and CS/SN diagnostics
    resolve    train the ADT ranker and resolve; print quality vs ground truth —
               or, with --name (and optionally --addr), ask a running server to
               fuzzy-resolve a possibly misspelled name into ranked candidates
    pipeline   alias for resolve (the paper's end-to-end pipeline)
    bench      run the pipeline and write machine-readable stage timings
               (BENCH_pipeline.json, or --out PATH)
    query      relative search with a certainty knob (--first / --last)
    narrate    print narratives for the best-attested resolved entities
    serve      persistent store + TCP query server (--dir required; bootstraps
               a store on first run, reopens snapshot + per-shard WALs afterwards)
    snapshot   fold a store's write-ahead logs into a fresh snapshot (--dir)
    top        live introspection of a running server: trace-ring counters,
               per-command latency rows, recent slow traces, per-command
               sparklines over the last 60 seconds and SLO status lines
               (--addr; --watch refreshes every 2 seconds)
    load       typed TCP client for a running server: concurrent ADDs plus a
               digest of a fixed query battery (--addr required)
    reproduce  regenerate every table and figure of the paper (--quick for a smoke run)
    audit      static analysis over the workspace's own sources (yv audit
               check [PATH...] | fix-baseline; --format human|json|sarif,
               --jobs N, --no-cache, --baseline FILE, --root DIR)

COMMON OPTIONS:
    --records N     dataset size (default 2000)
    --seed N        generator seed (default 7)
    --italy         use the Italy-set configuration (incl. the MV submitter)
    --ng X          MFIBlocks neighborhood growth (default 3.0)
    --max-minsup N  MFIBlocks MaxMinSup (default 5)
    --certainty X   query-time certainty threshold (default 0.0)

OBSERVABILITY OPTIONS (block, resolve/pipeline, bench):
    --timings          print a per-stage timing table after the run
    --trace-json PATH  write spans + counters as a Chrome-trace JSON file

BENCH REGRESSION GATE:
    --compare OLD.json   compare this run against a baseline bench file;
                         exit nonzero when any metric regresses
    --against NEW.json   with --compare: skip the run, compare two files
    --threshold X        ratio gate for _us/_ns/_bytes metrics (default 1.5)
    --min-delta N        absolute floor in metric units (default 10000)

SERVING OPTIONS:
    --dir PATH          store directory (snapshot segments + per-shard WALs)
    --shards N          shard count when bootstrapping a new store (default 1;
                        fixed at creation, existing stores keep theirs)
    --addr A:P          listen address (default 127.0.0.1:7878)
    --workers N         worker threads (default 4)
    --map-cache N       entity-map memo capacity (default 8)
    --metrics-addr A:P  Prometheus scrape sidecar answering GET /metrics
    --slow-us N         log requests slower than N microseconds as JSON
                        lines on stderr (arguments appear only as a digest)
                        and tail-sample them into the trace reservoir
    --trace-ring N      trace capture-ring capacity, rounded up to a power
                        of two (default 512; completed request traces,
                        introspectable via TOP / TRACE <id> / yv top)
    --no-trace          disable request-trace capture entirely
    --telemetry-dir DIR persist closed telemetry buckets to DIR/telemetry.yvt
                        (size-capped, one old generation kept) and replay
                        them on restart, so HISTORY survives restarts
    --slo RULES         comma-separated burn-rate rules, each
                        [metric:]pQQ<MICROS/WINDOW (e.g. query:p99<50000/60);
                        evaluated live as yv_slo_* gauges and HISTORY rows

TOP OPTIONS (yv top):
    --addr A:P          server address (default 127.0.0.1:7878)
    --k N               recent slow traces to show (default 5)
    --watch             redraw every 2 seconds until interrupted

RESOLVE CLIENT OPTIONS (yv resolve --name ...):
    --name X            the (possibly misspelled) name to resolve (client mode)
    --addr A:P          server address (default 127.0.0.1:7878)
    --k N               candidates to return (default 10)
    --min X             minimum blended score (inclusive floor)

LOAD OPTIONS:
    --adds N            records to ADD before the battery (default 0)
    --threads N         concurrent client connections for the ADDs (default 4)
    --book-base N       first synthetic book id (default 900000)
    --binary            negotiate the binary framed transport (HELLO) and
                        stream the ADDs as pipelined BATCH_ADD frames
    --batch N           records per BATCH_ADD frame with --binary (default 256)
    --shutdown          send SHUTDOWN after the battery

Unknown options are rejected with the list of options the command accepts.
";

/// The options (taking a value) and flags each command accepts; anything
/// else is rejected with the valid list.
fn spec(command: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
    match command {
        "generate" => Some((&["records", "seed"], &["italy"])),
        "import" => Some((&["path"], &[])),
        "export" => Some((&["records", "seed", "path"], &["italy"])),
        "block" => Some((
            &["records", "seed", "ng", "max-minsup", "trace-json"],
            &["italy", "timings"],
        )),
        "resolve" | "pipeline" => Some((
            &[
                "records", "seed", "ng", "max-minsup", "certainty", "trace-json", "addr",
                "name", "k", "min",
            ],
            &["italy", "timings"],
        )),
        "bench" => Some((
            &[
                "records", "seed", "ng", "max-minsup", "out", "trace-json", "compare",
                "against", "threshold", "min-delta",
            ],
            &["italy", "timings"],
        )),
        "query" => Some((&["records", "seed", "first", "last", "certainty"], &["italy"])),
        "narrate" => Some((&["records", "seed", "top"], &["italy"])),
        "serve" => Some((
            &[
                "records", "seed", "ng", "max-minsup", "dir", "shards", "addr",
                "workers", "map-cache", "metrics-addr", "slow-us", "trace-ring",
                "telemetry-dir", "slo",
            ],
            &["italy", "no-trace"],
        )),
        "snapshot" => Some((&["dir"], &[])),
        "top" => Some((&["addr", "k"], &["watch"])),
        "load" => Some((&["addr", "adds", "threads", "book-base", "batch"], &["shutdown", "binary"])),
        "reproduce" => Some((&[], &["quick"])),
        _ => None,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `audit` has its own grammar (bare subcommand positionals like
    // `check` that Args would reject), so it is dispatched to the shared
    // yv-audit driver before general argument parsing.
    if raw.first().map(String::as_str) == Some("audit") {
        std::process::exit(i32::from(yv_audit::cli::run(&raw[1..])));
    }
    let args = match Args::parse(
        raw,
        &["italy", "quick", "timings", "help", "shutdown", "watch", "no-trace", "binary"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some((options, flags)) = spec(&args.command) {
        if let Err(e) = args.reject_unknown(options, flags) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "export" => commands::export(&args),
        "import" => commands::import(&args),
        "block" => commands::block(&args),
        "resolve" | "pipeline" => commands::resolve(&args),
        "bench" => commands::bench(&args),
        "query" => commands::query(&args),
        "narrate" => commands::narrate(&args),
        "serve" => commands::serve(&args),
        "snapshot" => commands::snapshot(&args),
        "top" => commands::top(&args),
        "load" => commands::load(&args),
        "reproduce" => commands::reproduce(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
