//! The multi-source model: every record originates from one of >500,000
//! sources — a testimony submitter (a person who filed Pages of Testimony,
//! identified only by name and city, Section 2) or a victim list (transport
//! manifests, camp card files, ghetto registers; 16,656 lists in the full
//! dataset).

use serde::{Deserialize, Serialize};

/// Dense identifier of a source within a [`crate::Dataset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl SourceId {
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of source a record came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceKind {
    /// A Page of Testimony submitter. Submitters have no unique id in the
    /// original database; they are grouped by first name, last name and city
    /// (yielding 514,251 distinct submitters).
    Testimony { first_name: String, last_name: String, city: String },
    /// A victim list extracted from archive material.
    List { description: String },
}

/// A record source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Source {
    pub id: SourceId,
    pub kind: SourceKind,
}

impl Source {
    #[must_use]
    pub fn testimony(id: SourceId, first: &str, last: &str, city: &str) -> Self {
        Source {
            id,
            kind: SourceKind::Testimony {
                first_name: first.to_owned(),
                last_name: last.to_owned(),
                city: city.to_owned(),
            },
        }
    }

    #[must_use]
    pub fn list(id: SourceId, description: &str) -> Self {
        Source { id, kind: SourceKind::List { description: description.to_owned() } }
    }

    /// True for Pages of Testimony (about a third of the full dataset).
    #[must_use]
    pub fn is_testimony(&self) -> bool {
        matches!(self.kind, SourceKind::Testimony { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testimony_and_list_constructors() {
        let t = Source::testimony(SourceId(0), "Massimo", "Foa", "Cuorgne");
        assert!(t.is_testimony());
        let l = Source::list(SourceId(1), "Drancy to Auschwitz deportation list");
        assert!(!l.is_testimony());
    }

    #[test]
    fn source_id_index() {
        assert_eq!(SourceId(42).index(), 42);
    }
}
