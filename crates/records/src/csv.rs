//! CSV interchange for victim-report datasets.
//!
//! The flat format mirrors the public `yv-er` release the paper points at
//! (a record per row, multi-values `;`-separated, ground-truth `person_id`
//! in the last column when known). [`write_dataset`] and [`read_dataset`]
//! round-trip everything the similarity features consume, so the toolkit
//! can run on user-supplied data instead of the synthetic generator.
//!
//! Columns:
//!
//! ```text
//! book_id,source,first_names,last_names,gender,birth_day,birth_month,
//! birth_year,father,mother,spouse,maiden,mothers_maiden,profession,
//! birth_city,permanent_city,wartime_city,death_city,person_id
//! ```
//!
//! `gender` is the 0/1 code; empty cells are missing values; `person_id`
//! may be empty throughout (no ground truth).

use crate::field::{DateParts, Gender, Place, PlaceType};
use crate::record::RecordBuilder;
use crate::schema::Dataset;
use crate::source::{Source, SourceId};
use std::collections::HashMap;

/// The canonical header row.
pub const HEADER: &str = "book_id,source,first_names,last_names,gender,birth_day,birth_month,\
birth_year,father,mother,spouse,maiden,mothers_maiden,profession,\
birth_city,permanent_city,wartime_city,death_city,person_id";

/// Errors raised while reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    MissingHeader,
    WrongHeader(String),
    Row { line: usize, problem: String },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "empty input: no header row"),
            CsvError::WrongHeader(h) => write!(f, "unexpected header: {h}"),
            CsvError::Row { line, problem } => write!(f, "line {line}: {problem}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Quote a field when needed.
fn quote(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

/// Split one CSV line honoring double-quote escaping.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) => in_quotes = true,
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => {
                fields.push(std::mem::take(&mut cur));
            }
            (c, _) => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Serialize a dataset (and optional per-record ground truth) to CSV.
#[must_use]
pub fn write_dataset(ds: &Dataset, truth: Option<&[u64]>) -> String {
    let mut out = String::with_capacity(ds.len() * 96);
    out.push_str(HEADER);
    out.push('\n');
    for rid in ds.record_ids() {
        let r = ds.record(rid);
        let city =
            |ty: PlaceType| r.place(ty).and_then(|p| p.city.clone()).unwrap_or_default();
        let opt = |v: &Option<String>| v.clone().unwrap_or_default();
        let cells = [
            r.book_id.to_string(),
            r.source.0.to_string(),
            quote(&r.first_names.join(";")),
            quote(&r.last_names.join(";")),
            r.gender.map_or(String::new(), |g| g.code().to_string()),
            r.birth.day.map_or(String::new(), |d| d.to_string()),
            r.birth.month.map_or(String::new(), |m| m.to_string()),
            r.birth.year.map_or(String::new(), |y| y.to_string()),
            quote(&opt(&r.father_name)),
            quote(&opt(&r.mother_name)),
            quote(&opt(&r.spouse_name)),
            quote(&opt(&r.maiden_name)),
            quote(&opt(&r.mothers_maiden)),
            quote(&opt(&r.profession)),
            quote(&city(PlaceType::Birth)),
            quote(&city(PlaceType::Permanent)),
            quote(&city(PlaceType::Wartime)),
            quote(&city(PlaceType::Death)),
            truth.map_or(String::new(), |t| t[rid.index()].to_string()),
        ];
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse a CSV export back into a dataset. Sources are reconstructed as
/// anonymous lists keyed by the `source` column (the export does not carry
/// submitter metadata). Returns the dataset and, when the `person_id`
/// column is populated, the per-record ground truth.
pub fn read_dataset(text: &str) -> Result<(Dataset, Option<Vec<u64>>), CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    if header.trim() != HEADER {
        return Err(CsvError::WrongHeader(header.to_owned()));
    }
    let mut ds = Dataset::new();
    let mut source_map: HashMap<u32, SourceId> = HashMap::new();
    let mut truth: Vec<u64> = Vec::new();
    let mut any_truth = false;
    for (no, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != 19 {
            return Err(CsvError::Row {
                line: no + 1,
                problem: format!("expected 19 columns, found {}", fields.len()),
            });
        }
        let parse_u = |idx: usize, what: &str| -> Result<Option<u64>, CsvError> {
            let v = fields[idx].trim();
            if v.is_empty() {
                return Ok(None);
            }
            v.parse().map(Some).map_err(|_| CsvError::Row {
                line: no + 1,
                problem: format!("bad {what}: '{v}'"),
            })
        };
        let book_id = parse_u(0, "book_id")?.ok_or(CsvError::Row {
            line: no + 1,
            problem: "missing book_id".to_owned(),
        })?;
        let raw_source = parse_u(1, "source")?.unwrap_or(0) as u32;
        let source = *source_map.entry(raw_source).or_insert_with(|| {
            ds.add_source(Source::list(SourceId(0), &format!("imported source {raw_source}")))
        });
        let mut b = RecordBuilder::new(book_id, source);
        for name in fields[2].split(';').filter(|s| !s.trim().is_empty()) {
            b = b.first_name(name.trim());
        }
        for name in fields[3].split(';').filter(|s| !s.trim().is_empty()) {
            b = b.last_name(name.trim());
        }
        if let Some(code) = parse_u(4, "gender")? {
            let gender = Gender::from_code(code as u8).ok_or(CsvError::Row {
                line: no + 1,
                problem: format!("bad gender code {code}"),
            })?;
            b = b.gender(gender);
        }
        let birth = DateParts {
            day: parse_u(5, "birth_day")?.map(|d| d as u8),
            month: parse_u(6, "birth_month")?.map(|m| m as u8),
            year: parse_u(7, "birth_year")?.map(|y| y as i32),
        };
        if !birth.is_empty() {
            b = b.birth(birth);
        }
        let text_field = |idx: usize| {
            let v = fields[idx].trim();
            (!v.is_empty()).then(|| v.to_owned())
        };
        if let Some(v) = text_field(8) {
            b = b.father_name(v);
        }
        if let Some(v) = text_field(9) {
            b = b.mother_name(v);
        }
        if let Some(v) = text_field(10) {
            b = b.spouse_name(v);
        }
        if let Some(v) = text_field(11) {
            b = b.maiden_name(v);
        }
        if let Some(v) = text_field(12) {
            b = b.mothers_maiden(v);
        }
        if let Some(v) = text_field(13) {
            b = b.profession(v);
        }
        for (idx, ty) in [
            (14, PlaceType::Birth),
            (15, PlaceType::Permanent),
            (16, PlaceType::Wartime),
            (17, PlaceType::Death),
        ] {
            if let Some(city) = text_field(idx) {
                b = b.place(ty, Place { city: Some(city), ..Place::default() });
            }
        }
        ds.add_record(b.build());
        match parse_u(18, "person_id")? {
            Some(pid) => {
                any_truth = true;
                truth.push(pid);
            }
            None => truth.push(u64::MAX),
        }
    }
    Ok((ds, any_truth.then_some(truth)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GeoPoint;

    fn sample_dataset() -> (Dataset, Vec<u64>) {
        let mut ds = Dataset::new();
        let s0 = ds.add_source(Source::list(SourceId(0), "a"));
        let s1 = ds.add_source(Source::testimony(SourceId(0), "M", "Foa", "Cuorgne"));
        ds.add_record(
            RecordBuilder::new(1_059_654, s0)
                .first_name("Guido")
                .last_name("Foa")
                .gender(Gender::Male)
                .birth(DateParts::full(18, 11, 1920))
                .father_name("Donato")
                .place(
                    PlaceType::Birth,
                    Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.0, 7.7)),
                )
                .build(),
        );
        ds.add_record(
            RecordBuilder::new(1_028_769, s1)
                .first_name("Guido")
                .first_name("Gui, \"do\"")
                .last_name("Foy")
                .build(),
        );
        (ds, vec![7, 7])
    }

    #[test]
    fn round_trip_preserves_comparable_fields() {
        let (ds, truth) = sample_dataset();
        let text = write_dataset(&ds, Some(&truth));
        let (loaded, loaded_truth) = read_dataset(&text).expect("round trip");
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded_truth, Some(truth));
        let a = loaded.record(crate::RecordId(0));
        assert_eq!(a.book_id, 1_059_654);
        assert_eq!(a.first_names, vec!["Guido"]);
        assert_eq!(a.gender, Some(Gender::Male));
        assert_eq!(a.birth, DateParts::full(18, 11, 1920));
        assert_eq!(a.father_name.as_deref(), Some("Donato"));
        assert_eq!(
            a.place(PlaceType::Birth).and_then(|p| p.city.as_deref()),
            Some("Torino")
        );
        // Quoted multi-value with comma and escaped quotes survives.
        let b = loaded.record(crate::RecordId(1));
        assert_eq!(b.first_names, vec!["Guido", "Gui, \"do\""]);
        // Distinct sources stay distinct.
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn truth_column_is_optional() {
        let (ds, _) = sample_dataset();
        let text = write_dataset(&ds, None);
        let (_, truth) = read_dataset(&text).expect("parse");
        assert_eq!(truth, None);
    }

    #[test]
    fn header_is_validated() {
        assert!(matches!(read_dataset(""), Err(CsvError::MissingHeader)));
        assert!(matches!(
            read_dataset("id,name\n1,x\n"),
            Err(CsvError::WrongHeader(_))
        ));
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let text = format!("{HEADER}\n1,0,a,b\n");
        match read_dataset(&text) {
            Err(CsvError::Row { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected row error, got {other:?}"),
        }
        let bad_gender = format!("{HEADER}\n1,0,a,b,9,,,,,,,,,,,,,,\n");
        assert!(matches!(read_dataset(&bad_gender), Err(CsvError::Row { .. })));
    }

    #[test]
    fn split_line_handles_quoting() {
        assert_eq!(split_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_line("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(split_line("\"say \"\"hi\"\"\",x"), vec!["say \"hi\"", "x"]);
        assert_eq!(split_line(""), vec![""]);
    }

    #[test]
    fn imported_dataset_blocks_like_the_original() {
        // The itemized views of original and re-imported datasets agree on
        // city/name items (coordinates and non-city place parts are not
        // carried by the flat format, by design).
        let (ds, _) = sample_dataset();
        let text = write_dataset(&ds, None);
        let (loaded, _) = read_dataset(&text).expect("parse");
        let guido = loaded.interner().get(crate::ItemType::FirstName, "guido");
        assert!(guido.is_some());
        assert!(
            loaded.bag(crate::RecordId(0)).len() >= 6,
            "imported bags carry the comparable items"
        );
    }
}
