//! # yv-records
//!
//! Data model for the Yad Vashem Names Project reproduction (Sagi et al.,
//! SIGMOD 2016): victim-report records, the typed *item-bag* encoding used by
//! the MFIBlocks algorithm, string interning, the source model (Pages of
//! Testimony vs. victim lists), and the data-pattern analysis of Section 6.2.
//!
//! A [`Record`] mirrors the central entity of the Names Project ERD
//! (Figure 3 in the paper): names (first/last/maiden/father/mother/mother's
//! maiden/spouse), gender, birth-date components, four typed places
//! (birth/permanent/wartime/death) each with four parts
//! (city/county/region/country) and optional GPS coordinates, and a
//! profession code.
//!
//! Records are *massively multi-source*: every record carries a [`SourceId`]
//! pointing at either a testimony submitter or a victim list. Two records
//! from the same source are deemed unlikely to describe the same person
//! (`SameSrc` condition, Section 6.5).
//!
//! The item-bag encoding prefixes every field value with a type marker
//! (e.g. first name *Avraham* becomes the item `F Avraham`, cf. Table 2) and
//! interns it to a dense `u32` [`ItemId`] so the mining and blocking layers
//! work on integers.

pub mod csv;
pub mod equivalence;
pub mod field;
pub mod interner;
pub mod item;
pub mod patterns;
pub mod record;
pub mod schema;
pub mod source;

pub use equivalence::EquivalenceClasses;
pub use field::{DateParts, Gender, GeoPoint, Place, PlaceType};
pub use interner::Interner;
pub use item::{AggregateType, ItemId, ItemType};
pub use patterns::{Pattern, PatternStats};
pub use record::{Record, RecordBuilder, RecordId};
pub use schema::Dataset;
pub use source::{Source, SourceId, SourceKind};
