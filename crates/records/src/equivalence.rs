//! Equivalence classes for names and places (Section 2).
//!
//! "During the registration process, speakers of one language wrote
//! unfamiliar names and places in foreign languages, resulting in a vast
//! array of different spellings and semantic variants. … Equivalence
//! classes of first names, last names and places, as well as professions,
//! personal titles and family relations, were created to help deal with
//! multiple spellings and variants. The preprocessing of all misspelling
//! and name synonyms led to a large yet relatively clean Names project
//! database."
//!
//! An [`EquivalenceClasses`] dictionary maps every known variant to its
//! canonical form; applying it to a record before itemization collapses
//! transliteration twins (Torino/Turin, Avraham/Avrum) into one item —
//! the preprocessing that makes the Yad Vashem item bags "pre-cleaned".

use crate::field::{PlacePart, PlaceType};
use crate::record::Record;
use std::collections::HashMap;

/// A variant → canonical dictionary with rule-based fallback folding.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceClasses {
    map: HashMap<String, String>,
    /// Apply the transliteration folding rules to values absent from the
    /// dictionary (a cheap approximation of the experts' semantic
    /// classes).
    pub rule_fallback: bool,
}

/// Fold common cross-alphabet transliteration digraphs to a canonical
/// spelling: `w→v`, `cz/tsch/tch→ch`, `sz/sch→sh`, `ph→f`, `th→t`,
/// `j→y`, `ks/x→x`, collapse doubled letters.
#[must_use]
pub fn fold_transliterations(value: &str) -> String {
    let lower = value.to_lowercase();
    let mut out = lower
        .replace("tsch", "ch")
        .replace("tch", "ch")
        .replace("cz", "ch")
        .replace("sch", "sh")
        .replace("sz", "sh")
        .replace("ph", "f")
        .replace("th", "t")
        .replace('w', "v")
        .replace('j', "y")
        .replace("ks", "x");
    // Collapse doubled letters (Anna → Ana, Capelluto → Capeluto).
    let mut folded = String::with_capacity(out.len());
    let mut last = '\0';
    for c in out.drain(..) {
        if c != last {
            folded.push(c);
        }
        last = c;
    }
    folded
}

impl EquivalenceClasses {
    #[must_use]
    pub fn new() -> Self {
        EquivalenceClasses { map: HashMap::new(), rule_fallback: true }
    }

    /// Register a variant of a canonical form (both normalized to
    /// lowercase). Registering the canonical itself is allowed and
    /// harmless.
    pub fn register(&mut self, canonical: &str, variant: &str) {
        self.map.insert(variant.to_lowercase(), canonical.to_lowercase());
    }

    /// Number of registered variants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Canonicalize one value: dictionary lookup first, then (optionally)
    /// the rule-based fold.
    #[must_use]
    pub fn canonicalize(&self, value: &str) -> String {
        let lower = value.trim().to_lowercase();
        if let Some(canonical) = self.map.get(&lower) {
            return canonical.clone();
        }
        if self.rule_fallback {
            let folded = fold_transliterations(&lower);
            if let Some(canonical) = self.map.get(&folded) {
                return canonical.clone();
            }
            return folded;
        }
        lower
    }

    /// Apply the dictionary to every name and place-part of a record —
    /// the Names Project preprocessing step, run before
    /// [`crate::schema::Dataset::add_record`].
    pub fn apply(&self, record: &mut Record) {
        for name in record.first_names.iter_mut().chain(record.last_names.iter_mut()) {
            *name = self.canonicalize(name);
        }
        for field in [
            &mut record.maiden_name,
            &mut record.father_name,
            &mut record.mother_name,
            &mut record.mothers_maiden,
            &mut record.spouse_name,
        ]
        .into_iter()
        .flatten()
        {
            *field = self.canonicalize(field);
        }
        for ty in PlaceType::ALL {
            if let Some(place) = record.places[ty.index()].as_mut() {
                for part in PlacePart::ALL {
                    if let Some(v) = place.part(part) {
                        let canon = self.canonicalize(v);
                        place.set_part(part, Some(canon));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBuilder;
    use crate::source::SourceId;
    use crate::Place;

    #[test]
    fn dictionary_lookup_wins() {
        let mut eq = EquivalenceClasses::new();
        eq.register("torino", "turin");
        assert_eq!(eq.canonicalize("Turin"), "torino");
        assert_eq!(eq.canonicalize("TORINO"), "torino", "rule fold is identity here");
    }

    #[test]
    fn rule_fallback_folds_transliterations() {
        let eq = EquivalenceClasses::new();
        assert_eq!(eq.canonicalize("Wolf"), eq.canonicalize("Volf"));
        assert_eq!(eq.canonicalize("Szapiro"), eq.canonicalize("Shapiro"));
        assert_eq!(eq.canonicalize("Jakob"), eq.canonicalize("Yakob"));
        assert_eq!(eq.canonicalize("Anna"), eq.canonicalize("Ana"));
    }

    #[test]
    fn fold_is_idempotent() {
        for name in ["Wolf", "Szapiro", "Capelluto", "Tschaikowski", "Philipp"] {
            let once = fold_transliterations(name);
            assert_eq!(fold_transliterations(&once), once, "{name}");
        }
    }

    #[test]
    fn disabled_fallback_only_lowercases() {
        let eq = EquivalenceClasses { rule_fallback: false, ..EquivalenceClasses::new() };
        assert_eq!(eq.canonicalize("Wolf"), "wolf");
        assert_ne!(eq.canonicalize("Wolf"), eq.canonicalize("Volf"));
    }

    #[test]
    fn apply_canonicalizes_names_and_places() {
        let mut eq = EquivalenceClasses::new();
        eq.register("avraham", "avrum");
        eq.register("torino", "turin");
        let mut record = RecordBuilder::new(1, SourceId(0))
            .first_name("Avrum")
            .last_name("Wolf")
            .father_name("Avrum")
            .place(
                crate::PlaceType::Birth,
                Place { city: Some("Turin".to_owned()), ..Place::default() },
            )
            .build();
        eq.apply(&mut record);
        assert_eq!(record.first_names, vec!["avraham".to_owned()]);
        assert_eq!(record.last_names, vec!["volf".to_owned()]);
        assert_eq!(record.father_name.as_deref(), Some("avraham"));
        assert_eq!(
            record.place(crate::PlaceType::Birth).and_then(|p| p.city.as_deref()),
            Some("torino")
        );
    }
}
