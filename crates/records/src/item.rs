//! Typed items: the unit of the bag-of-items record representation.
//!
//! The paper prefixes every field value with a field reference before it
//! enters a record's item bag (`F Avraham`, `L Postel`, `G 0`, `YB 1927` —
//! Table 2). We model the prefix as an [`ItemType`] with 28 variants, one per
//! row of Table 4 (nine name/code attributes, three birth-date components and
//! 4 place types × 4 place parts), and intern `(type, value)` pairs to dense
//! [`ItemId`]s.

use crate::field::{PlacePart, PlaceType};
use serde::{Deserialize, Serialize};

/// A dense identifier for an interned `(ItemType, value)` pair.
///
/// Item ids are indices into the owning [`crate::Interner`]; all mining and
/// blocking structures operate on these `u32`s rather than strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The 28 item types of the Names Project schema (rows of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ItemType {
    FirstName,
    LastName,
    Gender,
    MaidenName,
    MothersMaiden,
    MotherFirstName,
    Profession,
    SpouseName,
    FatherName,
    BirthDay,
    BirthMonth,
    BirthYear,
    Place(PlaceType, PlacePart),
}

impl ItemType {
    /// All 28 item types in the stable order used by pattern bitmasks and
    /// rendered tables.
    #[must_use]
    pub fn all() -> Vec<ItemType> {
        let mut v = vec![
            ItemType::FirstName,
            ItemType::LastName,
            ItemType::Gender,
            ItemType::MaidenName,
            ItemType::MothersMaiden,
            ItemType::MotherFirstName,
            ItemType::Profession,
            ItemType::SpouseName,
            ItemType::FatherName,
            ItemType::BirthDay,
            ItemType::BirthMonth,
            ItemType::BirthYear,
        ];
        for ty in PlaceType::ALL {
            for part in PlacePart::ALL {
                v.push(ItemType::Place(ty, part));
            }
        }
        v
    }

    /// Number of distinct item types.
    pub const COUNT: usize = 28;

    /// Stable dense index in `[0, COUNT)`, used as a bit position in
    /// [`crate::Pattern`] masks.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ItemType::FirstName => 0,
            ItemType::LastName => 1,
            ItemType::Gender => 2,
            ItemType::MaidenName => 3,
            ItemType::MothersMaiden => 4,
            ItemType::MotherFirstName => 5,
            ItemType::Profession => 6,
            ItemType::SpouseName => 7,
            ItemType::FatherName => 8,
            ItemType::BirthDay => 9,
            ItemType::BirthMonth => 10,
            ItemType::BirthYear => 11,
            ItemType::Place(ty, part) => 12 + ty.index() * 4 + part.index(),
        }
    }

    /// Inverse of [`ItemType::index`].
    #[must_use]
    pub fn from_index(idx: usize) -> Option<ItemType> {
        let all = Self::all();
        all.get(idx).copied()
    }

    /// The item-bag prefix, following the paper's convention where visible
    /// (`F` first name, `L` last name, `G` gender, `YB` birth year,
    /// `P1..P4` place parts) and extending it consistently elsewhere.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            ItemType::FirstName => "F",
            ItemType::LastName => "L",
            ItemType::Gender => "G",
            ItemType::MaidenName => "MN",
            ItemType::MothersMaiden => "MMN",
            ItemType::MotherFirstName => "MF",
            ItemType::Profession => "PR",
            ItemType::SpouseName => "SP",
            ItemType::FatherName => "FF",
            ItemType::BirthDay => "DB",
            ItemType::BirthMonth => "MB",
            ItemType::BirthYear => "YB",
            ItemType::Place(PlaceType::Birth, part) => ["BP1", "BP2", "BP3", "BP4"][part.index()],
            ItemType::Place(PlaceType::Permanent, part) => ["P1", "P2", "P3", "P4"][part.index()],
            ItemType::Place(PlaceType::Wartime, part) => ["WP1", "WP2", "WP3", "WP4"][part.index()],
            ItemType::Place(PlaceType::Death, part) => ["DP1", "DP2", "DP3", "DP4"][part.index()],
        }
    }

    /// Human-readable label (row headers of Table 4).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            ItemType::FirstName => "First Name".to_owned(),
            ItemType::LastName => "Last Name".to_owned(),
            ItemType::Gender => "Gender".to_owned(),
            ItemType::MaidenName => "Maiden Name".to_owned(),
            ItemType::MothersMaiden => "Mother's Maiden Name".to_owned(),
            ItemType::MotherFirstName => "Mother's First Name".to_owned(),
            ItemType::Profession => "Profession".to_owned(),
            ItemType::SpouseName => "Spouse Name".to_owned(),
            ItemType::FatherName => "Father's Name".to_owned(),
            ItemType::BirthDay => "Birth Day".to_owned(),
            ItemType::BirthMonth => "Birth Month".to_owned(),
            ItemType::BirthYear => "Birth Year".to_owned(),
            ItemType::Place(ty, part) => format!("{} {}", ty.label(), part.label()),
        }
    }

    /// The coarse category used by the expert item similarity (Eq. 1) and
    /// the expert weighting scheme.
    #[must_use]
    pub fn sim_class(self) -> SimClass {
        match self {
            ItemType::FirstName
            | ItemType::LastName
            | ItemType::MaidenName
            | ItemType::MothersMaiden
            | ItemType::MotherFirstName
            | ItemType::SpouseName
            | ItemType::FatherName => SimClass::Name,
            ItemType::Gender | ItemType::Profession => SimClass::Code,
            ItemType::BirthDay => SimClass::Day,
            ItemType::BirthMonth => SimClass::Month,
            ItemType::BirthYear => SimClass::Year,
            ItemType::Place(_, PlacePart::City) => SimClass::Geo,
            ItemType::Place(_, _) => SimClass::Code,
        }
    }

    /// The aggregate attribute (rows of Table 3) this item type rolls up to.
    #[must_use]
    pub fn aggregate(self) -> AggregateType {
        match self {
            ItemType::FirstName => AggregateType::FirstName,
            ItemType::LastName => AggregateType::LastName,
            ItemType::Gender => AggregateType::Gender,
            ItemType::MaidenName => AggregateType::MaidenName,
            ItemType::MothersMaiden => AggregateType::MothersMaiden,
            ItemType::MotherFirstName => AggregateType::MotherName,
            ItemType::Profession => AggregateType::Profession,
            ItemType::SpouseName => AggregateType::SpouseName,
            ItemType::FatherName => AggregateType::FatherName,
            ItemType::BirthDay | ItemType::BirthMonth | ItemType::BirthYear => AggregateType::Dob,
            ItemType::Place(PlaceType::Birth, _) => AggregateType::BirthPlace,
            ItemType::Place(PlaceType::Permanent, _) => AggregateType::PermanentPlace,
            ItemType::Place(PlaceType::Wartime, _) => AggregateType::WartimePlace,
            ItemType::Place(PlaceType::Death, _) => AggregateType::DeathPlace,
        }
    }
}

/// Similarity class for the expert item similarity `fsim` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimClass {
    /// Compared with Jaro-Winkler.
    Name,
    /// Exact-match codes (gender, profession, non-city place parts).
    Code,
    /// `1 - |d1-d2|/31`.
    Day,
    /// `1 - monthDiff/12`.
    Month,
    /// `1 - |y1-y2|/50`.
    Year,
    /// `max(0, 1 - geoDist/100)` over registered coordinates.
    Geo,
}

/// The 14 aggregate attributes of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggregateType {
    LastName,
    FirstName,
    Gender,
    Dob,
    FatherName,
    MotherName,
    SpouseName,
    MaidenName,
    MothersMaiden,
    PermanentPlace,
    WartimePlace,
    BirthPlace,
    DeathPlace,
    Profession,
}

impl AggregateType {
    /// All aggregates in the row order of Table 3.
    pub const ALL: [AggregateType; 14] = [
        AggregateType::LastName,
        AggregateType::FirstName,
        AggregateType::Gender,
        AggregateType::Dob,
        AggregateType::FatherName,
        AggregateType::MotherName,
        AggregateType::SpouseName,
        AggregateType::MaidenName,
        AggregateType::MothersMaiden,
        AggregateType::PermanentPlace,
        AggregateType::WartimePlace,
        AggregateType::BirthPlace,
        AggregateType::DeathPlace,
        AggregateType::Profession,
    ];

    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AggregateType::LastName => "Last Name",
            AggregateType::FirstName => "First Name",
            AggregateType::Gender => "Gender",
            AggregateType::Dob => "DOB",
            AggregateType::FatherName => "Father's Name",
            AggregateType::MotherName => "Mother's Name",
            AggregateType::SpouseName => "Spouse Name",
            AggregateType::MaidenName => "Maiden Name",
            AggregateType::MothersMaiden => "Mother's Maiden",
            AggregateType::PermanentPlace => "Permanent Place",
            AggregateType::WartimePlace => "Wartime Place",
            AggregateType::BirthPlace => "Birth Place",
            AggregateType::DeathPlace => "Death Place",
            AggregateType::Profession => "Profession",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_28_item_types() {
        assert_eq!(ItemType::all().len(), ItemType::COUNT);
    }

    #[test]
    fn indices_are_a_bijection() {
        let all = ItemType::all();
        for (i, ty) in all.iter().enumerate() {
            assert_eq!(ty.index(), i, "{ty:?}");
            assert_eq!(ItemType::from_index(i), Some(*ty));
        }
        assert_eq!(ItemType::from_index(ItemType::COUNT), None);
    }

    #[test]
    fn prefixes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ty in ItemType::all() {
            assert!(seen.insert(ty.prefix()), "duplicate prefix {}", ty.prefix());
        }
    }

    #[test]
    fn paper_prefixes_match_table2() {
        assert_eq!(ItemType::FirstName.prefix(), "F");
        assert_eq!(ItemType::LastName.prefix(), "L");
        assert_eq!(ItemType::Gender.prefix(), "G");
        assert_eq!(ItemType::BirthYear.prefix(), "YB");
        assert_eq!(ItemType::Place(PlaceType::Permanent, PlacePart::City).prefix(), "P1");
        assert_eq!(ItemType::Place(PlaceType::Permanent, PlacePart::Country).prefix(), "P4");
    }

    #[test]
    fn every_item_type_aggregates_to_a_table3_row() {
        for ty in ItemType::all() {
            assert!(AggregateType::ALL.contains(&ty.aggregate()));
        }
    }

    #[test]
    fn dob_components_share_an_aggregate() {
        assert_eq!(ItemType::BirthDay.aggregate(), AggregateType::Dob);
        assert_eq!(ItemType::BirthMonth.aggregate(), AggregateType::Dob);
        assert_eq!(ItemType::BirthYear.aggregate(), AggregateType::Dob);
    }

    #[test]
    fn sim_classes_follow_eq1() {
        assert_eq!(ItemType::FirstName.sim_class(), SimClass::Name);
        assert_eq!(ItemType::BirthYear.sim_class(), SimClass::Year);
        assert_eq!(
            ItemType::Place(PlaceType::Birth, PlacePart::City).sim_class(),
            SimClass::Geo
        );
        assert_eq!(
            ItemType::Place(PlaceType::Birth, PlacePart::Country).sim_class(),
            SimClass::Code
        );
    }
}
