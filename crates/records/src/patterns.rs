//! Data-pattern analysis (Section 6.2, Figure 11 and Tables 3–4).
//!
//! A *pattern* is the set of item types for which a record has values; two
//! records share a pattern when they have values for exactly the same item
//! types. The multi-source nature of the dataset shows up as extreme schema
//! variability: the paper counts 18,567 patterns shared by ≤10 records each,
//! while 96 patterns are shared by >10,000 records.

use crate::item::{AggregateType, ItemType};
use crate::schema::Dataset;
use std::collections::HashMap;

/// A pattern: a bitmask over the 28 item types ([`ItemType::index`] is the
/// bit position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern(pub u32);

impl Pattern {
    /// The pattern of a record: one bit per item type present in its bag.
    #[must_use]
    pub fn of_record(ds: &Dataset, rid: crate::RecordId) -> Pattern {
        let mut mask = 0u32;
        for &item in ds.bag(rid) {
            mask |= 1 << ds.interner().item_type(item).index();
        }
        Pattern(mask)
    }

    /// Whether the pattern contains a given item type.
    #[must_use]
    pub fn contains(self, ty: ItemType) -> bool {
        self.0 & (1 << ty.index()) != 0
    }

    /// Number of item types in the pattern.
    #[must_use]
    pub fn arity(self) -> u32 {
        self.0.count_ones()
    }

    /// The full-information pattern (all 28 item types).
    #[must_use]
    pub fn full() -> Pattern {
        Pattern((1u32 << ItemType::COUNT) - 1)
    }
}

/// Aggregated pattern statistics over a dataset.
#[derive(Debug, Clone)]
pub struct PatternStats {
    /// Records sharing each pattern.
    pub counts: HashMap<Pattern, u64>,
    /// Total records analyzed.
    pub total_records: u64,
}

/// One bucket of the Figure 11 histogram: patterns shared by at most
/// `upper` records (and more than the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternBucket {
    /// Upper bound on records-per-pattern; `u64::MAX` for the "more" bucket.
    pub upper: u64,
    /// Number of distinct patterns in this bucket.
    pub pattern_count: u64,
    /// Total records participating in the bucket's patterns.
    pub record_sum: u64,
}

impl PatternStats {
    /// Count the patterns of every record in the dataset.
    #[must_use]
    pub fn analyze(ds: &Dataset) -> PatternStats {
        let mut counts: HashMap<Pattern, u64> = HashMap::new();
        for rid in ds.record_ids() {
            *counts.entry(Pattern::of_record(ds, rid)).or_insert(0) += 1;
        }
        PatternStats { counts, total_records: ds.len() as u64 }
    }

    /// Number of distinct patterns.
    #[must_use]
    pub fn distinct_patterns(&self) -> usize {
        self.counts.len()
    }

    /// Records sharing the most prevalent pattern, with that pattern.
    #[must_use]
    pub fn most_prevalent(&self) -> Option<(Pattern, u64)> {
        self.counts.iter().map(|(&p, &c)| (p, c)).max_by_key(|&(_, c)| c)
    }

    /// Records carrying the full-information pattern.
    #[must_use]
    pub fn full_pattern_records(&self) -> u64 {
        self.counts.get(&Pattern::full()).copied().unwrap_or(0)
    }

    /// The Figure 11 histogram: bucket patterns by how many records share
    /// them, with bounds 10 / 100 / 1,000 / 10,000 / more.
    #[must_use]
    pub fn figure11_buckets(&self) -> Vec<PatternBucket> {
        let bounds: [u64; 5] = [10, 100, 1_000, 10_000, u64::MAX];
        let mut buckets: Vec<PatternBucket> = bounds
            .iter()
            .map(|&upper| PatternBucket { upper, pattern_count: 0, record_sum: 0 })
            .collect();
        for &count in self.counts.values() {
            let slot = bounds.iter().position(|&b| count <= b).expect("MAX bound catches all");
            buckets[slot].pattern_count += 1;
            buckets[slot].record_sum += count;
        }
        buckets
    }
}

/// Prevalence of an aggregate attribute: records with a value and the
/// fraction of the dataset (columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prevalence {
    pub agg: AggregateType,
    pub records: u64,
    pub fraction: f64,
}

/// Compute Table 3 rows for a dataset.
#[must_use]
pub fn prevalence(ds: &Dataset) -> Vec<Prevalence> {
    let n = ds.len() as u64;
    AggregateType::ALL
        .iter()
        .map(|&agg| {
            let records =
                ds.records().iter().filter(|r| r.has_aggregate(agg)).count() as u64;
            Prevalence {
                agg,
                records,
                fraction: if n == 0 { 0.0 } else { records as f64 / n as f64 },
            }
        })
        .collect()
}

/// Cardinality of an item type: distinct items and average records per item
/// (columns of Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cardinality {
    pub ty: ItemType,
    pub items: u64,
    pub records_per_item: f64,
}

/// Compute Table 4 rows for a dataset. `records_per_item` counts record
/// participations (bag entries) per distinct item, as in the paper.
#[must_use]
pub fn cardinality(ds: &Dataset) -> Vec<Cardinality> {
    let mut distinct = vec![0u64; ItemType::COUNT];
    let mut participations = vec![0u64; ItemType::COUNT];
    for id in ds.interner().ids() {
        let ty = ds.interner().item_type(id);
        distinct[ty.index()] += 1;
    }
    for bag in ds.bags() {
        for &item in bag {
            participations[ds.interner().item_type(item).index()] += 1;
        }
    }
    ItemType::all()
        .into_iter()
        .map(|ty| Cardinality {
            ty,
            items: distinct[ty.index()],
            records_per_item: if distinct[ty.index()] == 0 {
                0.0
            } else {
                participations[ty.index()] as f64 / distinct[ty.index()] as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{DateParts, Gender};
    use crate::record::RecordBuilder;
    use crate::source::{Source, SourceId};

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        // Two records with identical patterns, one with a different pattern.
        for book in 0..2 {
            ds.add_record(
                RecordBuilder::new(book, s)
                    .first_name("A")
                    .last_name("B")
                    .gender(Gender::Male)
                    .build(),
            );
        }
        ds.add_record(
            RecordBuilder::new(2, s)
                .first_name("C")
                .birth(DateParts::year_only(1920))
                .build(),
        );
        ds
    }

    #[test]
    fn identical_field_sets_share_a_pattern() {
        let ds = tiny_dataset();
        let stats = PatternStats::analyze(&ds);
        assert_eq!(stats.distinct_patterns(), 2);
        assert_eq!(stats.most_prevalent().unwrap().1, 2);
    }

    #[test]
    fn pattern_contains_expected_types() {
        let ds = tiny_dataset();
        let p = Pattern::of_record(&ds, crate::RecordId(2));
        assert!(p.contains(ItemType::FirstName));
        assert!(p.contains(ItemType::BirthYear));
        assert!(!p.contains(ItemType::BirthDay));
        assert!(!p.contains(ItemType::LastName));
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn full_pattern_has_all_bits() {
        assert_eq!(Pattern::full().arity() as usize, ItemType::COUNT);
    }

    #[test]
    fn figure11_buckets_partition_patterns() {
        let ds = tiny_dataset();
        let stats = PatternStats::analyze(&ds);
        let buckets = stats.figure11_buckets();
        assert_eq!(buckets.len(), 5);
        let patterns: u64 = buckets.iter().map(|b| b.pattern_count).sum();
        assert_eq!(patterns as usize, stats.distinct_patterns());
        let records: u64 = buckets.iter().map(|b| b.record_sum).sum();
        assert_eq!(records, ds.len() as u64);
        // All patterns here are shared by <=10 records.
        assert_eq!(buckets[0].pattern_count, 2);
    }

    #[test]
    fn prevalence_fractions() {
        let ds = tiny_dataset();
        let prev = prevalence(&ds);
        let first = prev.iter().find(|p| p.agg == AggregateType::FirstName).unwrap();
        assert_eq!(first.records, 3);
        assert!((first.fraction - 1.0).abs() < 1e-12);
        let gender = prev.iter().find(|p| p.agg == AggregateType::Gender).unwrap();
        assert_eq!(gender.records, 2);
    }

    #[test]
    fn cardinality_counts_items_and_participations() {
        let ds = tiny_dataset();
        let card = cardinality(&ds);
        let first = card.iter().find(|c| c.ty == ItemType::FirstName).unwrap();
        assert_eq!(first.items, 2); // "a" and "c"
        // "a" occurs in 2 records, "c" in 1 => 3 participations / 2 items.
        assert!((first.records_per_item - 1.5).abs() < 1e-12);
        let gender = card.iter().find(|c| c.ty == ItemType::Gender).unwrap();
        assert_eq!(gender.items, 1);
        assert!((gender.records_per_item - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_safe() {
        let ds = Dataset::new();
        let stats = PatternStats::analyze(&ds);
        assert_eq!(stats.distinct_patterns(), 0);
        assert!(prevalence(&ds).iter().all(|p| p.records == 0));
    }
}
