//! String interning for typed items.
//!
//! Items are `(ItemType, normalized value)` pairs. The interner assigns each
//! distinct pair a dense [`ItemId`] so the FP-Growth miner and blocking
//! structures can work with `u32`s, and keeps per-item metadata: the item
//! type, the value, a global occurrence count (used for frequent-item
//! pruning, Section 6.3) and — for city items — registered geographic
//! coordinates consumed by the `Geo` branch of Eq. 1.

use crate::field::GeoPoint;
use crate::item::{ItemId, ItemType};
use std::collections::HashMap;

/// Per-item metadata stored by the interner.
#[derive(Debug, Clone)]
struct ItemMeta {
    ty: ItemType,
    value: String,
    occurrences: u64,
    geo: Option<GeoPoint>,
}

/// An append-only dictionary of typed items.
#[derive(Debug, Default)]
pub struct Interner {
    lookup: HashMap<(ItemType, String), ItemId>,
    items: Vec<ItemMeta>,
}

impl Interner {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a value under an item type, normalizing case and surrounding
    /// whitespace. Repeated interning increments the occurrence count.
    pub fn intern(&mut self, ty: ItemType, value: &str) -> ItemId {
        let norm = normalize(value);
        if let Some(&id) = self.lookup.get(&(ty, norm.clone())) {
            self.items[id.index()].occurrences += 1;
            return id;
        }
        let id = ItemId(u32::try_from(self.items.len()).expect("interner overflow"));
        self.items.push(ItemMeta { ty, value: norm.clone(), occurrences: 1, geo: None });
        self.lookup.insert((ty, norm), id);
        id
    }

    /// Look an item up without inserting.
    #[must_use]
    pub fn get(&self, ty: ItemType, value: &str) -> Option<ItemId> {
        self.lookup.get(&(ty, normalize(value))).copied()
    }

    /// Attach geographic coordinates to an item (idempotent; the first
    /// registration wins, matching the Names Project's one-coordinate-per-
    /// place-code model).
    pub fn register_geo(&mut self, id: ItemId, point: GeoPoint) {
        let meta = &mut self.items[id.index()];
        if meta.geo.is_none() {
            meta.geo = Some(point);
        }
    }

    /// Coordinates registered for an item, if any.
    #[must_use]
    pub fn geo(&self, id: ItemId) -> Option<GeoPoint> {
        self.items.get(id.index()).and_then(|m| m.geo)
    }

    /// The item type of an interned item.
    #[must_use]
    pub fn item_type(&self, id: ItemId) -> ItemType {
        self.items[id.index()].ty
    }

    /// The normalized value of an interned item.
    #[must_use]
    pub fn value(&self, id: ItemId) -> &str {
        &self.items[id.index()].value
    }

    /// The number of times an item was interned (its global occurrence
    /// count across all records).
    #[must_use]
    pub fn occurrences(&self, id: ItemId) -> u64 {
        self.items[id.index()].occurrences
    }

    /// Render an item in the paper's prefixed form, e.g. `F avraham`.
    #[must_use]
    pub fn display(&self, id: ItemId) -> String {
        let meta = &self.items[id.index()];
        format!("{} {}", meta.ty.prefix(), meta.value)
    }

    /// Number of distinct interned items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over all item ids.
    pub fn ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.items.len()).map(|i| ItemId(i as u32))
    }

    /// Distinct item count per item type (the "Items" column of Table 4).
    #[must_use]
    pub fn cardinality(&self, ty: ItemType) -> usize {
        self.items.iter().filter(|m| m.ty == ty).count()
    }
}

/// Normalization applied to every value before interning: trim and
/// lowercase. The Names Project preprocesses misspellings and synonyms into
/// equivalence classes (Section 2); case folding is the residual
/// normalization we must do ourselves.
#[must_use]
pub fn normalize(value: &str) -> String {
    value.trim().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_counts() {
        let mut it = Interner::new();
        let a = it.intern(ItemType::FirstName, "Guido");
        let b = it.intern(ItemType::FirstName, "guido ");
        assert_eq!(a, b);
        assert_eq!(it.occurrences(a), 2);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn same_value_different_type_is_distinct() {
        let mut it = Interner::new();
        let f = it.intern(ItemType::FirstName, "Foa");
        let l = it.intern(ItemType::LastName, "Foa");
        assert_ne!(f, l);
        assert_eq!(it.item_type(f), ItemType::FirstName);
        assert_eq!(it.item_type(l), ItemType::LastName);
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = Interner::new();
        assert_eq!(it.get(ItemType::LastName, "Foa"), None);
        let id = it.intern(ItemType::LastName, "Foa");
        assert_eq!(it.get(ItemType::LastName, "FOA"), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn geo_registration_first_wins() {
        let mut it = Interner::new();
        let id = it.intern(ItemType::Place(crate::PlaceType::Birth, crate::field::PlacePart::City), "Torino");
        assert_eq!(it.geo(id), None);
        it.register_geo(id, GeoPoint::new(45.07, 7.69));
        it.register_geo(id, GeoPoint::new(0.0, 0.0));
        let g = it.geo(id).unwrap();
        assert!((g.lat - 45.07).abs() < 1e-9);
    }

    #[test]
    fn display_uses_prefix() {
        let mut it = Interner::new();
        let id = it.intern(ItemType::FirstName, "Avraham");
        assert_eq!(it.display(id), "F avraham");
    }

    #[test]
    fn cardinality_counts_per_type() {
        let mut it = Interner::new();
        it.intern(ItemType::FirstName, "a");
        it.intern(ItemType::FirstName, "b");
        it.intern(ItemType::LastName, "a");
        assert_eq!(it.cardinality(ItemType::FirstName), 2);
        assert_eq!(it.cardinality(ItemType::LastName), 1);
        assert_eq!(it.cardinality(ItemType::Gender), 0);
    }
}
