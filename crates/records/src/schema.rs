//! The [`Dataset`]: records, sources, the shared interner and the
//! preprocessed item bags.
//!
//! Preprocessing (Figure 9, left box) converts each record into a sorted,
//! deduplicated bag of interned items and maintains an inverted index from
//! items to the records containing them.

use crate::field::PlacePart;
use crate::interner::Interner;
use crate::item::{ItemId, ItemType};
use crate::record::{Record, RecordId};
use crate::source::{Source, SourceId};

/// A collection of victim reports ready for blocking: records, their
/// sources, the interner and per-record item bags.
#[derive(Debug, Default)]
pub struct Dataset {
    records: Vec<Record>,
    sources: Vec<Source>,
    interner: Interner,
    /// Sorted, deduplicated item bag per record (parallel to `records`).
    bags: Vec<Vec<ItemId>>,
}

impl Dataset {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source and return its id. Sources must be added before
    /// records referencing them.
    pub fn add_source(&mut self, mut source: Source) -> SourceId {
        let id = SourceId(u32::try_from(self.sources.len()).expect("source overflow"));
        source.id = id;
        self.sources.push(source);
        id
    }

    /// Add a record, computing its item bag. Panics if the record references
    /// an unknown source.
    pub fn add_record(&mut self, record: Record) -> RecordId {
        assert!(
            record.source.index() < self.sources.len(),
            "record references unregistered source {:?}",
            record.source
        );
        let bag = itemize(&record, &mut self.interner);
        let id = RecordId(u32::try_from(self.records.len()).expect("record overflow"));
        self.records.push(record);
        self.bags.push(bag);
        id
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    #[must_use]
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.index()]
    }

    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    #[must_use]
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id.index()]
    }

    #[must_use]
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    #[must_use]
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The sorted item bag of a record.
    #[must_use]
    pub fn bag(&self, id: RecordId) -> &[ItemId] {
        &self.bags[id.index()]
    }

    /// All item bags, indexed by record.
    #[must_use]
    pub fn bags(&self) -> &[Vec<ItemId>] {
        &self.bags
    }

    /// Iterate over record ids.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        (0..self.records.len()).map(|i| RecordId(i as u32))
    }

    /// True when two records come from the same source (the `SameSrc`
    /// discard condition of Section 6.5).
    #[must_use]
    pub fn same_source(&self, a: RecordId, b: RecordId) -> bool {
        self.record(a).source == self.record(b).source
    }

    /// Build the inverted index mapping each item to the (sorted) list of
    /// records whose bag contains it.
    #[must_use]
    pub fn inverted_index(&self) -> Vec<Vec<RecordId>> {
        let mut index = vec![Vec::new(); self.interner.len()];
        for (rid, bag) in self.bags.iter().enumerate() {
            for &item in bag {
                index[item.index()].push(RecordId(rid as u32));
            }
        }
        index
    }
}

/// Convert a record into its sorted, deduplicated item bag, interning every
/// value with the field-type prefix convention of Table 2 and registering
/// geographic coordinates for city items.
pub fn itemize(record: &Record, interner: &mut Interner) -> Vec<ItemId> {
    let mut bag = Vec::with_capacity(24);
    for name in &record.first_names {
        bag.push(interner.intern(ItemType::FirstName, name));
    }
    for name in &record.last_names {
        bag.push(interner.intern(ItemType::LastName, name));
    }
    if let Some(n) = &record.maiden_name {
        bag.push(interner.intern(ItemType::MaidenName, n));
    }
    if let Some(n) = &record.father_name {
        bag.push(interner.intern(ItemType::FatherName, n));
    }
    if let Some(n) = &record.mother_name {
        bag.push(interner.intern(ItemType::MotherFirstName, n));
    }
    if let Some(n) = &record.mothers_maiden {
        bag.push(interner.intern(ItemType::MothersMaiden, n));
    }
    if let Some(n) = &record.spouse_name {
        bag.push(interner.intern(ItemType::SpouseName, n));
    }
    if let Some(g) = record.gender {
        bag.push(interner.intern(ItemType::Gender, &g.code().to_string()));
    }
    if let Some(d) = record.birth.day {
        bag.push(interner.intern(ItemType::BirthDay, &d.to_string()));
    }
    if let Some(m) = record.birth.month {
        bag.push(interner.intern(ItemType::BirthMonth, &m.to_string()));
    }
    if let Some(y) = record.birth.year {
        bag.push(interner.intern(ItemType::BirthYear, &y.to_string()));
    }
    if let Some(p) = &record.profession {
        bag.push(interner.intern(ItemType::Profession, p));
    }
    for ty in crate::field::PlaceType::ALL {
        if let Some(place) = record.place(ty) {
            for part in PlacePart::ALL {
                if let Some(value) = place.part(part) {
                    let id = interner.intern(ItemType::Place(ty, part), value);
                    if part == PlacePart::City {
                        if let Some(coords) = place.coords {
                            interner.register_geo(id, coords);
                        }
                    }
                    bag.push(id);
                }
            }
        }
    }
    bag.sort_unstable();
    bag.dedup();
    bag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{DateParts, Gender, GeoPoint, Place, PlaceType};
    use crate::record::RecordBuilder;

    fn dataset_with_two_records() -> Dataset {
        let mut ds = Dataset::new();
        let s0 = ds.add_source(Source::list(SourceId(0), "transport list"));
        let s1 = ds.add_source(Source::testimony(SourceId(0), "Massimo", "Foa", "Cuorgne"));
        ds.add_record(
            RecordBuilder::new(1016196, s0)
                .first_name("Guido")
                .last_name("Foa")
                .gender(Gender::Male)
                .birth(DateParts::full(18, 11, 1920))
                .place(
                    PlaceType::Birth,
                    Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69)),
                )
                .build(),
        );
        ds.add_record(
            RecordBuilder::new(1028769, s1)
                .first_name("Guido")
                .last_name("Foy")
                .gender(Gender::Male)
                .birth(DateParts::full(18, 11, 1920))
                .build(),
        );
        ds
    }

    #[test]
    fn bags_are_sorted_and_deduped() {
        let ds = dataset_with_two_records();
        for id in ds.record_ids() {
            let bag = ds.bag(id);
            assert!(bag.windows(2).all(|w| w[0] < w[1]), "bag not strictly sorted");
        }
    }

    #[test]
    fn shared_values_share_items() {
        let ds = dataset_with_two_records();
        let guido = ds.interner().get(ItemType::FirstName, "guido").unwrap();
        assert!(ds.bag(RecordId(0)).contains(&guido));
        assert!(ds.bag(RecordId(1)).contains(&guido));
    }

    #[test]
    fn inverted_index_matches_bags() {
        let ds = dataset_with_two_records();
        let idx = ds.inverted_index();
        for rid in ds.record_ids() {
            for &item in ds.bag(rid) {
                assert!(idx[item.index()].contains(&rid));
            }
        }
        let total: usize = idx.iter().map(Vec::len).sum();
        let bag_total: usize = ds.bags().iter().map(Vec::len).sum();
        assert_eq!(total, bag_total);
    }

    #[test]
    fn geo_coords_registered_for_cities() {
        let ds = dataset_with_two_records();
        let torino = ds
            .interner()
            .get(ItemType::Place(PlaceType::Birth, PlacePart::City), "torino")
            .unwrap();
        assert!(ds.interner().geo(torino).is_some());
    }

    #[test]
    fn same_source_detection() {
        let ds = dataset_with_two_records();
        assert!(!ds.same_source(RecordId(0), RecordId(1)));
        assert!(ds.same_source(RecordId(0), RecordId(0)));
    }

    #[test]
    #[should_panic(expected = "unregistered source")]
    fn unknown_source_panics() {
        let mut ds = Dataset::new();
        ds.add_record(RecordBuilder::new(1, SourceId(9)).build());
    }

    #[test]
    fn multi_valued_names_all_enter_bag() {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        let rid = ds.add_record(
            RecordBuilder::new(1, s).first_name("Yitzhak").first_name("Avram").build(),
        );
        let bag = ds.bag(rid);
        assert_eq!(bag.len(), 2);
    }
}
