//! The victim-report record and its builder.

use crate::field::{DateParts, Gender, Place, PlaceType};
use crate::item::AggregateType;
use crate::source::SourceId;
use serde::{Deserialize, Serialize};

/// Dense identifier of a record within a [`crate::Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl RecordId {
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One victim report, mirroring the central entity of the Names Project ERD
/// (Figure 3). First and last names are multi-valued (a person may be
/// reported under several first names or transliterations); the remaining
/// name attributes are single-valued in the schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Sequential BookID assigned on database entry.
    pub book_id: u64,
    /// The source this report came from.
    pub source: SourceId,
    pub first_names: Vec<String>,
    pub last_names: Vec<String>,
    pub maiden_name: Option<String>,
    pub father_name: Option<String>,
    pub mother_name: Option<String>,
    pub mothers_maiden: Option<String>,
    pub spouse_name: Option<String>,
    pub gender: Option<Gender>,
    pub birth: DateParts,
    pub profession: Option<String>,
    /// Places indexed by [`PlaceType::index`].
    pub places: [Option<Place>; 4],
}

impl Record {
    /// Access the place of a given type.
    #[must_use]
    pub fn place(&self, ty: PlaceType) -> Option<&Place> {
        self.places[ty.index()].as_ref()
    }

    /// True if the record carries any value for the aggregate attribute
    /// (used to compute the prevalence columns of Table 3).
    #[must_use]
    pub fn has_aggregate(&self, agg: AggregateType) -> bool {
        match agg {
            AggregateType::FirstName => !self.first_names.is_empty(),
            AggregateType::LastName => !self.last_names.is_empty(),
            AggregateType::Gender => self.gender.is_some(),
            AggregateType::Dob => !self.birth.is_empty(),
            AggregateType::FatherName => self.father_name.is_some(),
            AggregateType::MotherName => self.mother_name.is_some(),
            AggregateType::SpouseName => self.spouse_name.is_some(),
            AggregateType::MaidenName => self.maiden_name.is_some(),
            AggregateType::MothersMaiden => self.mothers_maiden.is_some(),
            AggregateType::PermanentPlace => self.place(PlaceType::Permanent).is_some_and(|p| !p.is_empty()),
            AggregateType::WartimePlace => self.place(PlaceType::Wartime).is_some_and(|p| !p.is_empty()),
            AggregateType::BirthPlace => self.place(PlaceType::Birth).is_some_and(|p| !p.is_empty()),
            AggregateType::DeathPlace => self.place(PlaceType::Death).is_some_and(|p| !p.is_empty()),
            AggregateType::Profession => self.profession.is_some(),
        }
    }
}

/// Fluent builder for [`Record`]s, used by the generator and by tests.
///
/// ```
/// use yv_records::{RecordBuilder, Gender, DateParts, PlaceType, Place, GeoPoint, SourceId};
///
/// let record = RecordBuilder::new(1016196, SourceId(0))
///     .first_name("Guido")
///     .last_name("Foa")
///     .gender(Gender::Male)
///     .birth(DateParts::full(2, 8, 1936))
///     .mother_name("Estela")
///     .father_name("Italo")
///     .place(PlaceType::Birth, Place::full("Torino", "Torino", "Piemonte", "Italy",
///         GeoPoint::new(45.07, 7.69)))
///     .build();
/// assert_eq!(record.first_names, vec!["Guido".to_owned()]);
/// ```
#[derive(Debug, Default)]
pub struct RecordBuilder {
    record: Record,
}

impl RecordBuilder {
    #[must_use]
    pub fn new(book_id: u64, source: SourceId) -> Self {
        RecordBuilder { record: Record { book_id, source, ..Record::default() } }
    }

    #[must_use]
    pub fn first_name(mut self, name: impl Into<String>) -> Self {
        self.record.first_names.push(name.into());
        self
    }

    #[must_use]
    pub fn last_name(mut self, name: impl Into<String>) -> Self {
        self.record.last_names.push(name.into());
        self
    }

    #[must_use]
    pub fn maiden_name(mut self, name: impl Into<String>) -> Self {
        self.record.maiden_name = Some(name.into());
        self
    }

    #[must_use]
    pub fn father_name(mut self, name: impl Into<String>) -> Self {
        self.record.father_name = Some(name.into());
        self
    }

    #[must_use]
    pub fn mother_name(mut self, name: impl Into<String>) -> Self {
        self.record.mother_name = Some(name.into());
        self
    }

    #[must_use]
    pub fn mothers_maiden(mut self, name: impl Into<String>) -> Self {
        self.record.mothers_maiden = Some(name.into());
        self
    }

    #[must_use]
    pub fn spouse_name(mut self, name: impl Into<String>) -> Self {
        self.record.spouse_name = Some(name.into());
        self
    }

    #[must_use]
    pub fn gender(mut self, g: Gender) -> Self {
        self.record.gender = Some(g);
        self
    }

    #[must_use]
    pub fn birth(mut self, d: DateParts) -> Self {
        self.record.birth = d;
        self
    }

    #[must_use]
    pub fn profession(mut self, p: impl Into<String>) -> Self {
        self.record.profession = Some(p.into());
        self
    }

    #[must_use]
    pub fn place(mut self, ty: PlaceType, place: Place) -> Self {
        self.record.places[ty.index()] = Some(place);
        self
    }

    #[must_use]
    pub fn build(self) -> Record {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GeoPoint;

    fn guido() -> Record {
        RecordBuilder::new(1016196, SourceId(3))
            .first_name("Guido")
            .last_name("Foa")
            .gender(Gender::Male)
            .birth(DateParts::full(2, 8, 1936))
            .mother_name("Estela")
            .father_name("Italo")
            .place(
                PlaceType::Birth,
                Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69)),
            )
            .build()
    }

    #[test]
    fn builder_populates_fields() {
        let r = guido();
        assert_eq!(r.book_id, 1016196);
        assert_eq!(r.source, SourceId(3));
        assert_eq!(r.gender, Some(Gender::Male));
        assert_eq!(r.father_name.as_deref(), Some("Italo"));
        assert!(r.place(PlaceType::Birth).is_some());
        assert!(r.place(PlaceType::Death).is_none());
    }

    #[test]
    fn aggregates_reflect_presence() {
        let r = guido();
        assert!(r.has_aggregate(AggregateType::FirstName));
        assert!(r.has_aggregate(AggregateType::Dob));
        assert!(r.has_aggregate(AggregateType::BirthPlace));
        assert!(!r.has_aggregate(AggregateType::SpouseName));
        assert!(!r.has_aggregate(AggregateType::DeathPlace));
        assert!(!r.has_aggregate(AggregateType::Profession));
    }

    #[test]
    fn empty_place_does_not_count_as_present() {
        let r = RecordBuilder::new(1, SourceId(0))
            .place(PlaceType::Death, Place::default())
            .build();
        assert!(!r.has_aggregate(AggregateType::DeathPlace));
    }

    #[test]
    fn multi_valued_first_names() {
        let r = RecordBuilder::new(1, SourceId(0))
            .first_name("Yitzhak")
            .first_name("Avram")
            .build();
        assert_eq!(r.first_names.len(), 2);
    }
}
