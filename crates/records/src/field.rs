//! Field value types shared by records: gender, date components, places and
//! geographic coordinates.

use serde::{Deserialize, Serialize};

/// Victim gender as recorded on the report.
///
/// The Names Project encodes gender as a code (`G 0` / `G 1` in the item-bag
/// sample of Table 2). `Unknown` models reports where the field is missing —
/// about 12% of the full dataset per Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    Male,
    Female,
}

impl Gender {
    /// The numeric code used in item bags (`0` = male, `1` = female).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Gender::Male => 0,
            Gender::Female => 1,
        }
    }

    /// Parse the numeric code back into a gender.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Gender::Male),
            1 => Some(Gender::Female),
            _ => None,
        }
    }
}

/// Birth-date components, each independently optional.
///
/// Many sources record only a year (`YB 1927` in Table 2); the feature
/// extractor (Section 5.1, `BXDist`) therefore measures per-component
/// distances normalized by 31 (days), 12 (months) and 100 (years).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DateParts {
    pub day: Option<u8>,
    pub month: Option<u8>,
    pub year: Option<i32>,
}

impl DateParts {
    /// A date with all three components present.
    #[must_use]
    pub fn full(day: u8, month: u8, year: i32) -> Self {
        DateParts { day: Some(day), month: Some(month), year: Some(year) }
    }

    /// A date with only the year known.
    #[must_use]
    pub fn year_only(year: i32) -> Self {
        DateParts { day: None, month: None, year: Some(year) }
    }

    /// True when no component is recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.day.is_none() && self.month.is_none() && self.year.is_none()
    }
}

/// A geographic coordinate (decimal degrees) attached to a place.
///
/// The Names Project database stores GPS coordinates per place (Figure 3);
/// the `PlaceXGeoDistance` features and the `Geo` branch of the expert item
/// similarity (Eq. 1) measure great-circle distance in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    pub lat: f64,
    pub lon: f64,
}

impl GeoPoint {
    #[must_use]
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }
}

/// The four typed places a victim report may carry.
///
/// Schema reconciliation at Yad Vashem established reliable semantics for
/// these attributes, so places are *never* compared across types (a birth
/// place is never matched against a permanent residence — Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlaceType {
    Birth,
    Permanent,
    Wartime,
    Death,
}

impl PlaceType {
    pub const ALL: [PlaceType; 4] =
        [PlaceType::Birth, PlaceType::Permanent, PlaceType::Wartime, PlaceType::Death];

    /// Stable index into per-record place arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PlaceType::Birth => 0,
            PlaceType::Permanent => 1,
            PlaceType::Wartime => 2,
            PlaceType::Death => 3,
        }
    }

    /// Short label used in rendered tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlaceType::Birth => "Birth",
            PlaceType::Permanent => "Perm.",
            PlaceType::Wartime => "War",
            PlaceType::Death => "Death",
        }
    }
}

/// The four hierarchical parts of a place, from most to least specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlacePart {
    City,
    County,
    Region,
    Country,
}

impl PlacePart {
    pub const ALL: [PlacePart; 4] =
        [PlacePart::City, PlacePart::County, PlacePart::Region, PlacePart::Country];

    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PlacePart::City => 0,
            PlacePart::County => 1,
            PlacePart::Region => 2,
            PlacePart::Country => 3,
        }
    }

    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacePart::City => "City",
            PlacePart::County => "County",
            PlacePart::Region => "Region",
            PlacePart::Country => "Country",
        }
    }
}

/// One typed place with its four optional parts and optional coordinates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Place {
    pub city: Option<String>,
    pub county: Option<String>,
    pub region: Option<String>,
    pub country: Option<String>,
    pub coords: Option<GeoPoint>,
}

impl Place {
    /// A place with every part filled, as produced by the generator for
    /// fully-specified sources.
    #[must_use]
    pub fn full(
        city: impl Into<String>,
        county: impl Into<String>,
        region: impl Into<String>,
        country: impl Into<String>,
        coords: GeoPoint,
    ) -> Self {
        Place {
            city: Some(city.into()),
            county: Some(county.into()),
            region: Some(region.into()),
            country: Some(country.into()),
            coords: Some(coords),
        }
    }

    /// Access one part by its [`PlacePart`] selector.
    #[must_use]
    pub fn part(&self, part: PlacePart) -> Option<&str> {
        match part {
            PlacePart::City => self.city.as_deref(),
            PlacePart::County => self.county.as_deref(),
            PlacePart::Region => self.region.as_deref(),
            PlacePart::Country => self.country.as_deref(),
        }
    }

    /// Set one part by its selector (used when corrupting generated data).
    pub fn set_part(&mut self, part: PlacePart, value: Option<String>) {
        match part {
            PlacePart::City => self.city = value,
            PlacePart::County => self.county = value,
            PlacePart::Region => self.region = value,
            PlacePart::Country => self.country = value,
        }
    }

    /// True when no part is recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.city.is_none() && self.county.is_none() && self.region.is_none() && self.country.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gender_codes_round_trip() {
        for g in [Gender::Male, Gender::Female] {
            assert_eq!(Gender::from_code(g.code()), Some(g));
        }
        assert_eq!(Gender::from_code(7), None);
    }

    #[test]
    fn date_parts_emptiness() {
        assert!(DateParts::default().is_empty());
        assert!(!DateParts::year_only(1920).is_empty());
        let d = DateParts::full(18, 11, 1920);
        assert_eq!(d.day, Some(18));
        assert_eq!(d.month, Some(11));
        assert_eq!(d.year, Some(1920));
    }

    #[test]
    fn place_part_round_trip() {
        let mut p = Place::default();
        assert!(p.is_empty());
        p.set_part(PlacePart::City, Some("Torino".to_owned()));
        assert_eq!(p.part(PlacePart::City), Some("Torino"));
        assert_eq!(p.part(PlacePart::Country), None);
        assert!(!p.is_empty());
        p.set_part(PlacePart::City, None);
        assert!(p.is_empty());
    }

    #[test]
    fn place_full_fills_all_parts() {
        let p = Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69));
        for part in PlacePart::ALL {
            assert!(p.part(part).is_some(), "{part:?} missing");
        }
        assert!(p.coords.is_some());
    }

    #[test]
    fn place_type_indices_are_distinct_and_dense() {
        let mut seen = [false; 4];
        for t in PlaceType::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
