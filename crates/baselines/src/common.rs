//! Shared infrastructure for baseline blockers: the [`Blocker`] trait, key
//! extraction, key-map materialization and pair accounting.

use std::collections::HashMap;
use yv_records::{Dataset, Record, RecordId};

/// A block-building technique: records in, blocks of records out.
pub trait Blocker {
    /// Display name matching Table 10.
    fn name(&self) -> &'static str;

    /// Build blocks. Blocks of fewer than two records are never emitted.
    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>>;
}

/// Every baseline of Table 10 under its default configuration.
#[must_use]
pub fn all_baselines() -> Vec<Box<dyn Blocker>> {
    vec![
        Box::new(crate::stbl::StandardBlocking),
        Box::new(crate::stbl::AttributeClustering::default()),
        Box::new(crate::canopy::CanopyClustering::default()),
        Box::new(crate::canopy::ExtendedCanopyClustering::default()),
        Box::new(crate::qgrams::QGramsBlocking::default()),
        Box::new(crate::qgrams::ExtendedQGramsBlocking::default()),
        Box::new(crate::sorted_neighborhood::ExtendedSortedNeighborhood::default()),
        Box::new(crate::suffix_arrays::SuffixArrays::default()),
        Box::new(crate::suffix_arrays::ExtendedSuffixArrays::default()),
        Box::new(crate::typimatch::TypiMatch::default()),
    ]
}

/// All lowercase whitespace tokens of every textual attribute of a record
/// (schema-agnostic token blocking ignores which attribute a token came
/// from).
#[must_use]
pub fn record_tokens(record: &Record) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    fn push(out: &mut Vec<String>, s: &str) {
        for t in s.split_whitespace() {
            out.push(t.to_lowercase());
        }
    }
    for n in record.first_names.iter().chain(&record.last_names) {
        push(&mut out, n);
    }
    for n in [
        &record.maiden_name,
        &record.father_name,
        &record.mother_name,
        &record.mothers_maiden,
        &record.spouse_name,
        &record.profession,
    ]
    .into_iter()
    .flatten()
    {
        push(&mut out, n);
    }
    if let Some(y) = record.birth.year {
        out.push(y.to_string());
    }
    for ty in yv_records::PlaceType::ALL {
        if let Some(place) = record.place(ty) {
            for part in yv_records::field::PlacePart::ALL {
                if let Some(v) = place.part(part) {
                    push(&mut out, v);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Materialize a key→records map into blocks, dropping singleton keys.
#[must_use]
pub fn keymap_to_blocks(map: HashMap<String, Vec<RecordId>>) -> Vec<Vec<RecordId>> {
    let mut blocks: Vec<Vec<RecordId>> = map
        .into_values()
        .filter_map(|mut records| {
            records.sort_unstable();
            records.dedup();
            (records.len() >= 2).then_some(records)
        })
        .collect();
    blocks.sort_unstable();
    blocks
}

/// Candidate-pair accounting without materializing the pair set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairStats {
    /// Distinct candidate pairs induced by the blocks.
    pub candidates: u64,
    /// Candidate pairs that are gold matches.
    pub true_positives: u64,
}

impl PairStats {
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.candidates as f64
        }
    }

    #[must_use]
    pub fn recall(&self, gold_total: u64) -> f64 {
        if gold_total == 0 {
            1.0
        } else {
            self.true_positives as f64 / gold_total as f64
        }
    }
}

/// Count distinct candidate pairs and gold hits. Massive blocks (standard
/// blocking's gender block spans half the dataset) make materializing the
/// pair set infeasible, so distinct pairs are counted per record with a
/// reusable scratch mask: `Σ_r |{r' > r sharing a block with r}|`.
#[must_use]
#[allow(clippy::needless_range_loop)] // r doubles as the RecordId value
pub fn pair_stats(
    blocks: &[Vec<RecordId>],
    n_records: usize,
    is_gold: &dyn Fn(RecordId, RecordId) -> bool,
) -> PairStats {
    // Blocks containing each record.
    let mut of_record: Vec<Vec<u32>> = vec![Vec::new(); n_records];
    for (bi, block) in blocks.iter().enumerate() {
        for &r in block {
            of_record[r.index()].push(bi as u32);
        }
    }
    let mut scratch = vec![false; n_records];
    let mut touched: Vec<u32> = Vec::new();
    let mut candidates = 0u64;
    let mut true_positives = 0u64;
    for r in 0..n_records {
        let rid = RecordId(r as u32);
        for &bi in &of_record[r] {
            for &other in &blocks[bi as usize] {
                let o = other.index();
                if o > r && !scratch[o] {
                    scratch[o] = true;
                    touched.push(o as u32);
                }
            }
        }
        candidates += touched.len() as u64;
        for &o in &touched {
            if is_gold(rid, RecordId(o)) {
                true_positives += 1;
            }
            scratch[o as usize] = false;
        }
        touched.clear();
    }
    PairStats { candidates, true_positives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, SourceId};

    fn rid(i: u32) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn tokens_are_schema_agnostic_and_deduped() {
        let r = RecordBuilder::new(1, SourceId(0))
            .first_name("Guido")
            .last_name("Foa")
            .father_name("guido")
            .build();
        let tokens = record_tokens(&r);
        assert_eq!(tokens, vec!["foa", "guido"]);
    }

    #[test]
    fn keymap_drops_singletons() {
        let mut map = HashMap::new();
        map.insert("a".to_owned(), vec![rid(0), rid(1)]);
        map.insert("b".to_owned(), vec![rid(2)]);
        let blocks = keymap_to_blocks(map);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], vec![rid(0), rid(1)]);
    }

    #[test]
    fn pair_stats_counts_distinct_pairs() {
        // Overlapping blocks must not double-count the (0,1) pair.
        let blocks = vec![vec![rid(0), rid(1), rid(2)], vec![rid(0), rid(1)]];
        let stats = pair_stats(&blocks, 3, &|a, b| (a, b) == (rid(0), rid(1)));
        assert_eq!(stats.candidates, 3); // (0,1), (0,2), (1,2)
        assert_eq!(stats.true_positives, 1);
        assert!((stats.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.recall(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_blocks_yield_zero() {
        let stats = pair_stats(&[], 5, &|_, _| true);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.precision(), 0.0);
        assert!((stats.recall(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_baselines_has_ten_entries_with_unique_names() {
        let bs = all_baselines();
        assert_eq!(bs.len(), 10);
        let mut names = std::collections::HashSet::new();
        for b in &bs {
            assert!(names.insert(b.name()));
        }
    }

    #[test]
    fn record_tokens_include_places_and_year() {
        let r = RecordBuilder::new(1, SourceId(0))
            .birth(yv_records::DateParts::year_only(1920))
            .place(
                yv_records::PlaceType::Birth,
                yv_records::Place {
                    city: Some("Torino".to_owned()),
                    ..Default::default()
                },
            )
            .build();
        let tokens = record_tokens(&r);
        assert!(tokens.contains(&"1920".to_owned()));
        assert!(tokens.contains(&"torino".to_owned()));
    }
}
