//! Standard (token) blocking [9, 23] and Attribute Clustering [23].

use crate::common::{keymap_to_blocks, record_tokens, Blocker};
use std::collections::{HashMap, HashSet};
use yv_records::{Dataset, RecordId};

/// `StBl`: one block per token appearing in more than one record —
/// schema-agnostic token blocking, "a block for each attribute value
/// shared by more than one record".
#[derive(Debug, Default, Clone, Copy)]
pub struct StandardBlocking;

impl Blocker for StandardBlocking {
    fn name(&self) -> &'static str {
        "StBl"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                map.entry(token).or_default().push(rid);
            }
        }
        keymap_to_blocks(map)
    }
}

/// `ACl`: attributes whose value sets look alike (token-set Jaccard above
/// `threshold`) are clustered together; tokens then act as keys *within*
/// their attribute cluster, so `John` in a first-name column and `John` in
/// a spouse column only collide when the columns were clustered together.
#[derive(Debug, Clone, Copy)]
pub struct AttributeClustering {
    pub threshold: f64,
}

impl Default for AttributeClustering {
    fn default() -> Self {
        AttributeClustering { threshold: 0.1 }
    }
}

/// Logical attribute columns for clustering purposes.
const COLUMNS: usize = 10;

fn column_tokens(record: &yv_records::Record, column: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut push = |s: &str| out.extend(s.split_whitespace().map(str::to_lowercase));
    match column {
        0 => record.first_names.iter().for_each(|n| push(n)),
        1 => record.last_names.iter().for_each(|n| push(n)),
        2 => {
            if let Some(n) = &record.maiden_name {
                push(n);
            }
        }
        3 => {
            if let Some(n) = &record.father_name {
                push(n);
            }
        }
        4 => {
            if let Some(n) = &record.mother_name {
                push(n);
            }
        }
        5 => {
            if let Some(n) = &record.spouse_name {
                push(n);
            }
        }
        6 => {
            if let Some(n) = &record.mothers_maiden {
                push(n);
            }
        }
        7 => {
            if let Some(y) = record.birth.year {
                out.push(y.to_string());
            }
        }
        8 => {
            for ty in yv_records::PlaceType::ALL {
                if let Some(p) = record.place(ty) {
                    if let Some(c) = &p.city {
                        push(c);
                    }
                }
            }
        }
        _ => {
            if let Some(p) = &record.profession {
                push(p);
            }
        }
    }
    out
}

impl Blocker for AttributeClustering {
    fn name(&self) -> &'static str {
        "ACl"
    }

    #[allow(clippy::needless_range_loop)] // col is a logical column id
    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        // Value set per column.
        let mut values: Vec<HashSet<String>> = vec![HashSet::new(); COLUMNS];
        for rid in ds.record_ids() {
            for col in 0..COLUMNS {
                values[col].extend(column_tokens(ds.record(rid), col));
            }
        }
        // Union-find over columns connected by value-set similarity.
        let mut parent: Vec<usize> = (0..COLUMNS).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for a in 0..COLUMNS {
            for b in a + 1..COLUMNS {
                let inter = values[a].intersection(&values[b]).count();
                let union = values[a].len() + values[b].len() - inter;
                let sim = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
                if sim > self.threshold {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
            }
        }
        // Keys are (cluster, token).
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for col in 0..COLUMNS {
                let cluster = find(&mut parent, col);
                for token in column_tokens(ds.record(rid), col) {
                    map.entry(format!("{cluster}#{token}")).or_default().push(rid);
                }
            }
        }
        keymap_to_blocks(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(RecordBuilder::new(0, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(1, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(2, s).first_name("Moshe").last_name("Postel").build());
        ds.add_record(RecordBuilder::new(3, s).father_name("Guido").last_name("Levi").build());
        ds
    }

    #[test]
    fn stbl_blocks_by_shared_token() {
        let blocks = StandardBlocking.blocks(&dataset());
        // "guido" appears in records 0, 1 and 3 (as a father name —
        // schema-agnostic); "foa" in 0, 1.
        assert!(blocks.iter().any(|b| b.len() == 3));
        assert!(blocks.iter().any(|b| *b == vec![RecordId(0), RecordId(1)]));
        // No singleton blocks.
        assert!(blocks.iter().all(|b| b.len() >= 2));
    }

    #[test]
    fn acl_separates_unclustered_columns() {
        // With a threshold of ~1.0 nothing clusters, so "guido" as a first
        // name and as a father name live in different blocks.
        let blocks = AttributeClustering { threshold: 0.99 }.blocks(&dataset());
        assert!(!blocks.iter().any(|b| b.len() == 3), "no cross-column guido block");
        assert!(blocks.iter().any(|b| *b == vec![RecordId(0), RecordId(1)]));
    }

    #[test]
    fn acl_with_zero_threshold_acts_like_token_blocking() {
        // Threshold 0 clusters every pair of columns sharing any token.
        let loose = AttributeClustering { threshold: 0.0 }.blocks(&dataset());
        assert!(loose.iter().any(|b| b.len() == 3), "guido block should merge");
    }

    #[test]
    fn stbl_recall_is_total_on_identical_records() {
        // Identical records always share a token => recall 1 by
        // construction (the Table 10 property).
        let ds = dataset();
        let blocks = StandardBlocking.blocks(&ds);
        let stats = crate::common::pair_stats(&blocks, ds.len(), &|a, b| {
            (a, b) == (RecordId(0), RecordId(1))
        });
        assert_eq!(stats.true_positives, 1);
    }
}
