//! # yv-baselines
//!
//! The ten baseline blocking techniques of the comparative study
//! (Section 6.6, Table 10), reimplemented with the default configurations
//! described by Papadakis et al. [24]:
//!
//! | Technique | Idea |
//! |---|---|
//! | `StBl` | standard/token blocking -- one block per token |
//! | `ACl` | attribute clustering, then token blocking per cluster |
//! | `CaCl` | canopy clustering from random seeds |
//! | `ECaCl` | canopies plus assignment of leftover records |
//! | `QGBl` | q-gram keys |
//! | `EQGBl` | concatenated q-gram keys |
//! | `ESoNe` | extended sorted neighborhood (sliding window over keys) |
//! | `SuAr` | suffix-array keys with block-size cap |
//! | `ESuAr` | all-substring keys with block-size cap |
//! | `TYPiMatch` | token co-occurrence types, then per-type blocking |
//!
//! All of them were designed for *high recall* under the assumption that
//! blocking is mere preprocessing; on the pre-cleaned, code-valued Yad
//! Vashem data they reach recall close to 1 at precision below 0.001, two
//! orders of magnitude under MFIBlocks (Table 10) -- the result the bench
//! reproduces.

pub mod canopy;
pub mod common;
pub mod qgrams;
pub mod sorted_neighborhood;
pub mod stbl;
pub mod suffix_arrays;
pub mod typimatch;

pub use canopy::{CanopyClustering, ExtendedCanopyClustering};
pub use common::{all_baselines, pair_stats, Blocker, PairStats};
pub use qgrams::{ExtendedQGramsBlocking, QGramsBlocking};
pub use sorted_neighborhood::ExtendedSortedNeighborhood;
pub use stbl::{AttributeClustering, StandardBlocking};
pub use suffix_arrays::{ExtendedSuffixArrays, SuffixArrays};
pub use typimatch::TypiMatch;
