//! Extended Sorted Neighborhood [9]: sort the distinct blocking keys
//! alphabetically and slide a fixed window over the *key list*; all records
//! whose keys fall inside one window position form a block.

use crate::common::{record_tokens, Blocker};
use std::collections::HashMap;
use yv_records::{Dataset, RecordId};

/// `ESoNe` with window size `w` (survey default 3).
#[derive(Debug, Clone, Copy)]
pub struct ExtendedSortedNeighborhood {
    pub window: usize,
}

impl Default for ExtendedSortedNeighborhood {
    fn default() -> Self {
        ExtendedSortedNeighborhood { window: 3 }
    }
}

impl Blocker for ExtendedSortedNeighborhood {
    fn name(&self) -> &'static str {
        "ESoNe"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        assert!(self.window >= 1, "window must be positive");
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                map.entry(token).or_default().push(rid);
            }
        }
        let mut keys: Vec<String> = map.keys().cloned().collect();
        keys.sort_unstable();
        let mut blocks = Vec::new();
        if keys.is_empty() {
            return blocks;
        }
        let last_start = keys.len().saturating_sub(self.window);
        for start in 0..=last_start {
            let mut block: Vec<RecordId> = Vec::new();
            for key in &keys[start..(start + self.window).min(keys.len())] {
                block.extend(map[key].iter().copied());
            }
            block.sort_unstable();
            block.dedup();
            if block.len() >= 2 {
                blocks.push(block);
            }
        }
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        // Alphabetically adjacent misspellings end up in one window.
        ds.add_record(RecordBuilder::new(0, s).last_name("Foa").build());
        ds.add_record(RecordBuilder::new(1, s).last_name("Fob").build());
        ds.add_record(RecordBuilder::new(2, s).last_name("Zzz").build());
        ds
    }

    #[test]
    fn adjacent_keys_share_a_window() {
        let blocks = ExtendedSortedNeighborhood { window: 2 }.blocks(&dataset());
        assert!(blocks
            .iter()
            .any(|b| b.contains(&RecordId(0)) && b.contains(&RecordId(1))));
    }

    #[test]
    fn window_one_is_plain_key_blocking() {
        // With w = 1 only records sharing the exact key collide; the three
        // distinct surnames yield no blocks.
        let blocks = ExtendedSortedNeighborhood { window: 1 }.blocks(&dataset());
        assert!(blocks.is_empty());
    }

    #[test]
    fn larger_windows_never_reduce_pairs() {
        let ds = dataset();
        let p = |w: usize| {
            let blocks = ExtendedSortedNeighborhood { window: w }.blocks(&ds);
            crate::common::pair_stats(&blocks, ds.len(), &|_, _| false).candidates
        };
        assert!(p(3) >= p(2));
        assert!(p(2) >= p(1));
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        assert!(ExtendedSortedNeighborhood::default().blocks(&ds).is_empty());
    }
}
