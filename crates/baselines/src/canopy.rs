//! Canopy Clustering [21] and its extended variant [9].
//!
//! CaCl iteratively removes a random seed record from the candidate pool
//! and forms a canopy from all pool records whose cheap similarity to the
//! seed exceeds an inclusion threshold `t1`; records above the tighter
//! removal threshold `t2` leave the pool, so canopies are mostly disjoint.
//! ECaCl additionally assigns records that ended up in no canopy to the
//! canopy of their most similar seed.

use crate::common::Blocker;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use yv_records::{Dataset, RecordId};
use yv_similarity::jaccard::jaccard_sorted;

/// `CaCl` with token-Jaccard as the cheap similarity.
#[derive(Debug, Clone, Copy)]
pub struct CanopyClustering {
    /// Inclusion threshold (record joins the canopy).
    pub t1: f64,
    /// Removal threshold (record also leaves the pool); must be ≥ `t1`.
    pub t2: f64,
    /// RNG seed for the random seed-record order.
    pub seed: u64,
}

impl Default for CanopyClustering {
    fn default() -> Self {
        CanopyClustering { t1: 0.3, t2: 0.6, seed: 42 }
    }
}

fn raw_bags(ds: &Dataset) -> Vec<Vec<u32>> {
    ds.bags().iter().map(|bag| bag.iter().map(|i| i.0).collect()).collect()
}

fn build_canopies(
    ds: &Dataset,
    config: &CanopyClustering,
) -> (Vec<(RecordId, Vec<RecordId>)>, Vec<RecordId>) {
    assert!(config.t2 >= config.t1, "t2 must be at least t1");
    let bags = raw_bags(ds);
    let n = ds.len();
    // Inverted index for candidate generation: a Jaccard above t1 > 0
    // requires at least one shared item, so only records sharing an item
    // with the seed are compared. Ultra-common items (gender codes,
    // country names — appearing in over 10% of records) are skipped: on
    // their own they cannot lift Jaccard past any useful t1 and they would
    // reintroduce the quadratic scan.
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); ds.interner().len()];
    for (ri, bag) in bags.iter().enumerate() {
        for &item in bag {
            postings[item as usize].push(ri as u32);
        }
    }
    let common_cap = (n / 10).max(50);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut in_pool = vec![true; n];
    let mut covered = vec![false; n];
    let mut seen = vec![false; n];
    let mut canopies: Vec<(RecordId, Vec<RecordId>)> = Vec::new();
    for &seed_idx in &order {
        if !in_pool[seed_idx] {
            continue;
        }
        in_pool[seed_idx] = false;
        covered[seed_idx] = true;
        let mut members = vec![RecordId(seed_idx as u32)];
        let mut candidates: Vec<u32> = Vec::new();
        for &item in &bags[seed_idx] {
            let list = &postings[item as usize];
            if list.len() > common_cap {
                continue;
            }
            for &other in list {
                let o = other as usize;
                if o != seed_idx && in_pool[o] && !seen[o] {
                    seen[o] = true;
                    candidates.push(other);
                }
            }
        }
        for &other in &candidates {
            let o = other as usize;
            seen[o] = false;
            let sim = jaccard_sorted(&bags[seed_idx], &bags[o]);
            if sim > config.t1 {
                members.push(RecordId(other));
                covered[o] = true;
                if sim > config.t2 {
                    in_pool[o] = false;
                }
            }
        }
        if members.len() >= 2 {
            members.sort_unstable();
            canopies.push((RecordId(seed_idx as u32), members));
        }
    }
    let leftovers: Vec<RecordId> =
        (0..n).filter(|&i| !covered[i]).map(|i| RecordId(i as u32)).collect();
    (canopies, leftovers)
}

impl Blocker for CanopyClustering {
    fn name(&self) -> &'static str {
        "CaCl"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        build_canopies(ds, self).0.into_iter().map(|(_, members)| members).collect()
    }
}

/// `ECaCl`: CaCl plus nearest-seed assignment of leftover records.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct ExtendedCanopyClustering {
    pub inner: CanopyClustering,
}


impl Blocker for ExtendedCanopyClustering {
    fn name(&self) -> &'static str {
        "ECaCl"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let (mut canopies, leftovers) = build_canopies(ds, &self.inner);
        let bags = raw_bags(ds);
        for record in leftovers {
            let mut best: Option<(usize, f64)> = None;
            for (ci, (seed, _)) in canopies.iter().enumerate() {
                let sim = jaccard_sorted(&bags[record.index()], &bags[seed.index()]);
                if sim > 0.0 && best.is_none_or(|(_, b)| sim > b) {
                    best = Some((ci, sim));
                }
            }
            if let Some((ci, _)) = best {
                canopies[ci].1.push(record);
                canopies[ci].1.sort_unstable();
            }
        }
        canopies.into_iter().map(|(_, members)| members).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{DateParts, Gender, RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        for i in 0..2 {
            ds.add_record(
                RecordBuilder::new(i, s)
                    .first_name("Guido")
                    .last_name("Foa")
                    .gender(Gender::Male)
                    .birth(DateParts::year_only(1920))
                    .build(),
            );
        }
        ds.add_record(
            RecordBuilder::new(2, s)
                .first_name("Moshe")
                .last_name("Postel")
                .gender(Gender::Female)
                .build(),
        );
        ds
    }

    #[test]
    fn near_duplicates_share_a_canopy() {
        let blocks = CanopyClustering::default().blocks(&dataset());
        assert!(blocks
            .iter()
            .any(|b| b.contains(&RecordId(0)) && b.contains(&RecordId(1))));
    }

    #[test]
    fn extended_variant_assigns_leftovers() {
        let ds = dataset();
        let base: usize =
            CanopyClustering::default().blocks(&ds).iter().map(Vec::len).sum();
        let extended: usize =
            ExtendedCanopyClustering::default().blocks(&ds).iter().map(Vec::len).sum();
        assert!(extended >= base);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = dataset();
        let a = CanopyClustering::default().blocks(&ds);
        let b = CanopyClustering::default().blocks(&ds);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "t2 must be at least t1")]
    fn inverted_thresholds_panic() {
        let ds = dataset();
        let _ = CanopyClustering { t1: 0.9, t2: 0.1, seed: 0 }.blocks(&ds);
    }
}
