//! TYPiMatch [20]: type-specific unsupervised key learning.
//!
//! The original algorithm builds a token co-occurrence graph, extracts
//! maximal cliques as latent *types*, assigns records to types and then
//! standard-blocks within each type. Exact maximal-clique enumeration is
//! exponential; following common practice we approximate cliques with the
//! connected components of the thresholded co-occurrence graph (documented
//! deviation — the effect is coarser types, i.e. a more permissive
//! blocker, which matches the low precision Table 10 reports for it).

use crate::common::{keymap_to_blocks, record_tokens, Blocker};
use std::collections::HashMap;
use yv_records::{Dataset, RecordId};

/// `TYPiMatch` with a co-occurrence ratio threshold.
#[derive(Debug, Clone, Copy)]
pub struct TypiMatch {
    /// Tokens `a, b` are connected when
    /// `cooc(a,b) / min(freq(a), freq(b)) ≥ threshold`.
    pub threshold: f64,
}

impl Default for TypiMatch {
    fn default() -> Self {
        TypiMatch { threshold: 0.5 }
    }
}

impl Blocker for TypiMatch {
    fn name(&self) -> &'static str {
        "TYPiMatch"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        // Token vocabulary and frequencies.
        let mut token_ids: HashMap<String, u32> = HashMap::new();
        let mut record_token_lists: Vec<Vec<u32>> = Vec::with_capacity(ds.len());
        for rid in ds.record_ids() {
            let mut list = Vec::new();
            for token in record_tokens(ds.record(rid)) {
                let next = token_ids.len() as u32;
                let id = *token_ids.entry(token).or_insert(next);
                list.push(id);
            }
            list.sort_unstable();
            list.dedup();
            record_token_lists.push(list);
        }
        let n_tokens = token_ids.len();
        let mut freq = vec![0u32; n_tokens];
        for list in &record_token_lists {
            for &t in list {
                freq[t as usize] += 1;
            }
        }
        // Pairwise co-occurrence counts (sparse map). To bound cost on
        // records with many tokens, co-occurrence is only counted between
        // tokens appearing in at least two records.
        let mut cooc: HashMap<(u32, u32), u32> = HashMap::new();
        for list in &record_token_lists {
            let multi: Vec<u32> =
                list.iter().copied().filter(|&t| freq[t as usize] >= 2).collect();
            for i in 0..multi.len() {
                for j in i + 1..multi.len() {
                    *cooc.entry((multi[i], multi[j])).or_insert(0) += 1;
                }
            }
        }
        // Union-find over tokens: connected components approximate the
        // maximal cliques of the original algorithm.
        let mut parent: Vec<u32> = (0..n_tokens as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for (&(a, b), &count) in &cooc {
            let denom = freq[a as usize].min(freq[b as usize]) as f64;
            if denom > 0.0 && count as f64 / denom >= self.threshold {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra as usize] = rb;
                }
            }
        }
        // A record belongs to the types of its tokens; blocking keys are
        // (type, token).
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for (ri, list) in record_token_lists.iter().enumerate() {
            for &t in list {
                let ty = find(&mut parent, t);
                map.entry(format!("{ty}#{t}")).or_default().push(RecordId(ri as u32));
            }
        }
        keymap_to_blocks(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(RecordBuilder::new(0, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(1, s).first_name("Guido").last_name("Foa").build());
        ds.add_record(RecordBuilder::new(2, s).first_name("Moshe").build());
        ds
    }

    #[test]
    fn shared_tokens_still_block_together() {
        let blocks = TypiMatch::default().blocks(&dataset());
        assert!(blocks
            .iter()
            .any(|b| b.contains(&RecordId(0)) && b.contains(&RecordId(1))));
    }

    #[test]
    fn singleton_tokens_produce_no_blocks() {
        let blocks = TypiMatch::default().blocks(&dataset());
        for b in &blocks {
            assert!(b.len() >= 2);
        }
    }

    #[test]
    fn threshold_one_is_most_conservative() {
        let ds = dataset();
        let loose = TypiMatch { threshold: 0.1 }.blocks(&ds);
        let strict = TypiMatch { threshold: 1.0 }.blocks(&ds);
        // Both find the guido/foa block; strict typing cannot create more
        // blocks than loose typing merges.
        assert!(!strict.is_empty());
        assert!(loose.len() <= strict.len() + 2);
    }
}
