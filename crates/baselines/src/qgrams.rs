//! Q-Grams blocking [15] and Extended Q-Grams blocking [9].

use crate::common::{keymap_to_blocks, record_tokens, Blocker};
use std::collections::HashMap;
use yv_records::{Dataset, RecordId};
use yv_similarity::strings::qgrams;

/// `QGBl`: every token is decomposed into its q-grams and each q-gram acts
/// as a blocking key, making the keys robust to single-character noise.
#[derive(Debug, Clone, Copy)]
pub struct QGramsBlocking {
    pub q: usize,
}

impl Default for QGramsBlocking {
    fn default() -> Self {
        QGramsBlocking { q: 3 }
    }
}

impl Blocker for QGramsBlocking {
    fn name(&self) -> &'static str {
        "QGBl"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                for gram in qgrams(&token, self.q) {
                    map.entry(gram).or_default().push(rid);
                }
            }
        }
        keymap_to_blocks(map)
    }
}

/// `EQGBl`: concatenates combinations of a token's q-grams into longer,
/// more discriminative keys. With `L` grams and threshold `t`, all
/// combinations of `k = max(1, ⌊L·t⌋)` grams become keys.
#[derive(Debug, Clone, Copy)]
pub struct ExtendedQGramsBlocking {
    pub q: usize,
    /// Fraction of a token's grams a key must contain (default 0.9 as in
    /// the survey).
    pub threshold: f64,
}

impl Default for ExtendedQGramsBlocking {
    fn default() -> Self {
        ExtendedQGramsBlocking { q: 3, threshold: 0.9 }
    }
}

impl ExtendedQGramsBlocking {
    fn keys_for(&self, token: &str) -> Vec<String> {
        let grams = qgrams(token, self.q);
        let l = grams.len();
        if l == 0 {
            return Vec::new();
        }
        let k = ((l as f64 * self.threshold).floor() as usize).max(1);
        if k >= l {
            return vec![grams.concat()];
        }
        // All combinations of k grams, order-preserving. For names L is
        // small (≤ ~12 grams), and k ≈ 0.9·L keeps the combination count at
        // "L choose L-1"-scale.
        let mut keys = Vec::new();
        let mut indices: Vec<usize> = (0..k).collect();
        loop {
            keys.push(indices.iter().map(|&i| grams[i].as_str()).collect::<String>());
            // Advance the combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return keys;
                }
                i -= 1;
                if indices[i] != i + l - k {
                    break;
                }
            }
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
        }
    }
}

impl Blocker for ExtendedQGramsBlocking {
    fn name(&self) -> &'static str {
        "EQGBl"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                for key in self.keys_for(&token) {
                    map.entry(key).or_default().push(rid);
                }
            }
        }
        keymap_to_blocks(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        ds.add_record(RecordBuilder::new(0, s).last_name("Bella").build());
        ds.add_record(RecordBuilder::new(1, s).last_name("Della").build());
        ds.add_record(RecordBuilder::new(2, s).last_name("Postel").build());
        ds
    }

    #[test]
    fn qgrams_survive_clerical_errors() {
        // Bella and Della share the grams "ell" and "lla" => same block.
        let blocks = QGramsBlocking::default().blocks(&dataset());
        assert!(blocks
            .iter()
            .any(|b| b.contains(&RecordId(0)) && b.contains(&RecordId(1))));
    }

    #[test]
    fn extended_keys_are_more_discriminative() {
        let ds = dataset();
        let plain = QGramsBlocking::default().blocks(&ds);
        let extended = ExtendedQGramsBlocking::default().blocks(&ds);
        let count_pairs = |blocks: &[Vec<RecordId>]| {
            crate::common::pair_stats(blocks, ds.len(), &|_, _| false).candidates
        };
        assert!(count_pairs(&extended) <= count_pairs(&plain));
    }

    #[test]
    fn combination_enumeration_is_correct() {
        let e = ExtendedQGramsBlocking { q: 2, threshold: 0.5 };
        // "abcd" has grams ab, bc, cd; k = 1 => three single-gram keys.
        let keys = e.keys_for("abcd");
        assert_eq!(keys.len(), 3);
        let e2 = ExtendedQGramsBlocking { q: 2, threshold: 0.7 };
        // k = floor(3 * 0.7) = 2 => C(3,2) = 3 keys.
        let keys2 = e2.keys_for("abcd");
        assert_eq!(keys2, vec!["abbc", "abcd", "bccd"]);
    }

    #[test]
    fn short_tokens_yield_whole_token_key() {
        let e = ExtendedQGramsBlocking::default();
        assert_eq!(e.keys_for("ab"), vec!["ab"]);
        assert!(e.keys_for("").is_empty());
    }
}
