//! Suffix Arrays blocking [1] and the extended all-substrings variant [9].

use crate::common::{keymap_to_blocks, record_tokens, Blocker};
use std::collections::HashMap;
use yv_records::{Dataset, RecordId};
use yv_similarity::strings::{substrings, suffixes};

/// `SuAr`: keys are token suffixes of length ≥ `min_len`; blocks larger
/// than `max_block` (overly common suffixes) are discarded — the
/// original technique's robustness lever.
#[derive(Debug, Clone, Copy)]
pub struct SuffixArrays {
    pub min_len: usize,
    pub max_block: usize,
}

impl Default for SuffixArrays {
    fn default() -> Self {
        // The survey's absolute cap (~53) presumes the real set's name
        // cardinality (1,495 distinct Italian surnames); our synthetic
        // pools are smaller, so common suffixes form larger blocks and an
        // equivalent cap must scale up to keep recall comparable.
        SuffixArrays { min_len: 4, max_block: 150 }
    }
}

impl Blocker for SuffixArrays {
    fn name(&self) -> &'static str {
        "SuAr"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                for suffix in suffixes(&token, self.min_len) {
                    map.entry(suffix).or_default().push(rid);
                }
            }
        }
        let mut blocks = keymap_to_blocks(map);
        blocks.retain(|b| b.len() <= self.max_block);
        blocks
    }
}

/// `ESuAr`: keys are *all substrings* of length ≥ `min_len`, trading more
/// comparisons for robustness to errors at token ends.
#[derive(Debug, Clone, Copy)]
pub struct ExtendedSuffixArrays {
    pub min_len: usize,
    pub max_block: usize,
}

impl Default for ExtendedSuffixArrays {
    fn default() -> Self {
        ExtendedSuffixArrays { min_len: 4, max_block: 150 }
    }
}

impl Blocker for ExtendedSuffixArrays {
    fn name(&self) -> &'static str {
        "ESuAr"
    }

    fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
        for rid in ds.record_ids() {
            for token in record_tokens(ds.record(rid)) {
                for sub in substrings(&token, self.min_len) {
                    map.entry(sub).or_default().push(rid);
                }
            }
        }
        let mut blocks = keymap_to_blocks(map);
        blocks.retain(|b| b.len() <= self.max_block);
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{RecordBuilder, Source, SourceId};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        // "Goldberg" and "Goldberger" share the suffix "berg"? No:
        // suffixes of goldberger include "berger", of goldberg "berg".
        // They do share substrings; and prefixes damage SuAr less than
        // suffixes.
        ds.add_record(RecordBuilder::new(0, s).last_name("Goldberg").build());
        ds.add_record(RecordBuilder::new(1, s).last_name("Holdberg").build());
        ds.add_record(RecordBuilder::new(2, s).last_name("Postel").build());
        ds
    }

    #[test]
    fn suffix_keys_tolerate_prefix_errors() {
        // Goldberg vs Holdberg share the suffix "oldberg".
        let blocks = SuffixArrays::default().blocks(&dataset());
        assert!(blocks
            .iter()
            .any(|b| b.contains(&RecordId(0)) && b.contains(&RecordId(1))));
    }

    #[test]
    fn extended_generates_at_least_as_many_pairs() {
        let ds = dataset();
        let count = |blocks: &[Vec<RecordId>]| {
            crate::common::pair_stats(blocks, ds.len(), &|_, _| false).candidates
        };
        let suar = SuffixArrays::default().blocks(&ds);
        let esuar = ExtendedSuffixArrays::default().blocks(&ds);
        assert!(count(&esuar) >= count(&suar));
    }

    #[test]
    fn oversized_blocks_are_purged() {
        let mut ds = Dataset::new();
        let s = ds.add_source(Source::list(SourceId(0), "l"));
        for i in 0..10 {
            ds.add_record(RecordBuilder::new(i, s).last_name("Samename").build());
        }
        let blocks = SuffixArrays { min_len: 4, max_block: 5 }.blocks(&ds);
        assert!(blocks.is_empty(), "all keys exceed the cap");
    }
}
