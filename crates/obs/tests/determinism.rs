//! The acceptance property of the observability layer: under a
//! [`ManualClock`] the recorder's outputs are deterministic — 20 runs of
//! the same span script produce byte-identical Chrome traces and timing
//! tables.

#![allow(clippy::unwrap_used)]

use yv_obs::{chrome_trace, timings_table, Recorder};

/// A scripted multi-stage run shaped like the real pipeline: nested
/// per-iteration mining spans, an accumulated stage, and counters.
fn run_script() -> (String, String) {
    let (rec, clock) = Recorder::manual();
    let root = rec.span("pipeline");
    clock.advance(500_000);
    for (iteration, minsup) in [5u64, 4, 3, 2].into_iter().enumerate() {
        let iter_span = rec.span_with("iteration", &[("minsup", minsup)]);
        {
            let mine = rec.span_with("mine", &[("minsup", minsup)]);
            clock.advance(1_000_000 * (iteration as u64 + 1));
            mine.finish();
        }
        {
            let _score = rec.span("score");
            clock.advance(250_000);
        }
        rec.incr("mfis_mined", 10 + minsup);
        iter_span.finish();
    }
    let extract_start = rec.now_ns();
    clock.advance(750_000);
    rec.record_span("extract", extract_start, 750_000);
    rec.incr("candidate_pairs", 1234);
    root.finish();
    (chrome_trace(&rec), timings_table(&rec))
}

#[test]
fn twenty_runs_are_byte_identical() {
    let (first_trace, first_table) = run_script();
    for run in 1..20 {
        let (trace, table) = run_script();
        assert_eq!(trace, first_trace, "trace diverged on run {run}");
        assert_eq!(table, first_table, "table diverged on run {run}");
    }
}

#[test]
fn trace_carries_the_span_taxonomy_and_args() {
    let (trace, table) = run_script();
    for name in ["pipeline", "iteration", "mine", "score", "extract"] {
        assert!(trace.contains(&format!("\"name\":\"{name}\"")), "{name} missing");
        assert!(table.contains(name), "{name} missing from table");
    }
    // Per-iteration minsup arguments survive into the trace.
    for minsup in [5, 4, 3, 2] {
        assert!(trace.contains(&format!("\"minsup\":{minsup}")));
    }
    // Counters aggregate across iterations: 15+14+13+12.
    assert!(trace.contains("\"name\":\"mfis_mined\""));
    assert!(trace.contains("\"value\":54"));
}

#[test]
fn span_nesting_depths_are_recorded() {
    let (rec, clock) = Recorder::manual();
    let a = rec.span("a");
    let b = rec.span("b");
    clock.advance(10);
    let c = rec.span("c");
    clock.advance(5);
    c.finish();
    b.finish();
    a.finish();
    let depths: Vec<(String, usize)> =
        rec.spans().into_iter().map(|s| (s.name, s.depth)).collect();
    assert_eq!(
        depths,
        vec![("a".to_owned(), 0), ("b".to_owned(), 1), ("c".to_owned(), 2)]
    );
}
