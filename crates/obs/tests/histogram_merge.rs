//! Property: merging histograms is exact. Because every [`Histogram`]
//! shares the same fixed power-of-two bucket boundaries, folding one
//! histogram into another produces bucket counts identical to a histogram
//! fed the concatenated sample stream — so merged quantiles equal the
//! quantiles of the concatenation (well within the issue's one-bucket
//! tolerance: the property holds exactly).

#![allow(clippy::unwrap_used)]

use proptest::collection::vec;
use proptest::prelude::*;
use yv_obs::Histogram;

fn fill(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &ns in samples {
        h.record_ns(ns);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles of `a.merge(&b)` equal quantiles of the concatenated
    /// stream `a ++ b`, for every quantile and any sample mix spanning
    /// sub-microsecond to multi-second latencies.
    fn merged_quantiles_equal_concatenated_stream(
        a in vec(0u64..5_000_000_000, 0..120),
        b in vec(0u64..5_000_000_000, 0..120),
    ) {
        let left = fill(&a);
        let right = fill(&b);
        left.merge(&right);

        let concatenated: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let reference = fill(&concatenated);

        // Bucket-exact merge: identical snapshots...
        prop_assert_eq!(left.snapshot(), reference.snapshot());
        // ...hence identical quantiles at every rank.
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(
                left.percentile_us(q),
                reference.percentile_us(q),
                "q={}", q
            );
        }
        prop_assert_eq!(left.summary(), reference.summary());
        // The merge source is untouched.
        prop_assert_eq!(right.snapshot(), fill(&b).snapshot());
    }

    /// Merge is commutative on the bucket level: a∪b == b∪a.
    fn merge_is_commutative(
        a in vec(0u64..5_000_000_000, 0..80),
        b in vec(0u64..5_000_000_000, 0..80),
    ) {
        let ab = fill(&a);
        ab.merge(&fill(&b));
        let ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    /// `sub` then `merge` round-trips a snapshot: for any prefix/window
    /// split of one growing histogram, `later.sub(&earlier)` recovers the
    /// window and merging it back onto `earlier` reproduces `later`
    /// field-for-field (counts, sum, max, and the min bound) — the
    /// invariant windowed rollups and telemetry.yvt replay rely on.
    fn sub_then_merge_round_trips(
        prefix in vec(0u64..5_000_000_000, 0..100),
        window in vec(0u64..5_000_000_000, 0..100),
    ) {
        let h = fill(&prefix);
        let earlier = h.snapshot();
        for &ns in &window {
            h.record_ns(ns);
        }
        let later = h.snapshot();
        let delta = later.sub(&earlier).expect("later is a superset of earlier");
        prop_assert_eq!(delta.count(), window.len() as u64);
        prop_assert_eq!(delta.merge(&earlier), later);
        prop_assert_eq!(earlier.merge(&delta), later);
        // The delta's percentiles never undershoot its min bound.
        for q in [0.0, 0.5, 0.99, 1.0] {
            if delta.count() > 0 {
                prop_assert!(delta.percentile_interp_us(q) >= delta.min_ns / 1_000, "q={}", q);
            }
        }
        // Subtracting out of order is a typed refusal, not garbage.
        if delta.count() > 0 {
            prop_assert_eq!(earlier.sub(&later), None);
        }
    }
}
