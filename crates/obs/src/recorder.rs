//! Structured span recording over an injected [`Clock`].
//!
//! A [`Recorder`] collects nested, named [`SpanRecord`]s plus named
//! counters. Spans are RAII guards: [`Recorder::span`] opens one at the
//! current nesting depth, dropping (or [`Span::finish`]ing) it closes it.
//! With a [`ManualClock`] the recorded stream — and every rendering of it
//! — is deterministic and byte-identical across runs, which is how the
//! instrumented pipeline stays testable.

use crate::clock::{Clock, ManualClock, MonotonicClock};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Clock reading when the span opened.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Optional structured arguments (e.g. the minsup level of a mining
    /// iteration).
    pub args: Vec<(String, u64)>,
}

impl SpanRecord {
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    depth: usize,
    counters: BTreeMap<String, u64>,
}

/// Collects spans and counters against an injected clock.
#[derive(Debug)]
pub struct Recorder {
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl Recorder {
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Recorder {
        Recorder { clock, inner: Mutex::new(Inner::default()) }
    }

    /// A recorder over the real clock — what production paths use.
    #[must_use]
    pub fn monotonic() -> Recorder {
        Recorder::new(Arc::new(MonotonicClock::new()))
    }

    /// A recorder over a [`ManualClock`], returned alongside the clock
    /// handle so tests can advance time explicitly.
    #[must_use]
    pub fn manual() -> (Recorder, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Recorder::new(Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    /// The injected clock's current reading.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_nanos()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Span bookkeeping never panics while holding the lock; recover
        // the data rather than poisoning the whole recorder if a caller's
        // panic unwinds through a guard drop.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Open a span at the current depth. Close it by dropping the guard
    /// or calling [`Span::finish`] to also get the duration back.
    #[must_use]
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_with(name, &[])
    }

    /// Open a span carrying structured arguments.
    #[must_use]
    pub fn span_with(&self, name: &str, args: &[(&str, u64)]) -> Span<'_> {
        let depth = {
            let mut inner = self.lock();
            let d = inner.depth;
            inner.depth += 1;
            d
        };
        Span {
            recorder: self,
            open: Some(OpenSpan {
                name: name.to_owned(),
                args: args.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
                depth,
                start_ns: self.now_ns(),
            }),
        }
    }

    /// Record an already-measured span (for stages whose duration is
    /// accumulated across a fused loop rather than bracketed by a guard).
    pub fn record_span(&self, name: &str, start_ns: u64, dur_ns: u64) {
        let mut inner = self.lock();
        let depth = inner.depth;
        inner.spans.push(SpanRecord {
            name: name.to_owned(),
            depth,
            start_ns,
            dur_ns,
            args: Vec::new(),
        });
    }

    fn close(&self, open: OpenSpan) -> u64 {
        let end = self.now_ns();
        let dur_ns = end.saturating_sub(open.start_ns);
        let mut inner = self.lock();
        inner.depth = inner.depth.saturating_sub(1);
        inner.spans.push(SpanRecord {
            name: open.name,
            depth: open.depth,
            start_ns: open.start_ns,
            dur_ns,
            args: open.args,
        });
        dur_ns
    }

    /// Add `by` to the named counter.
    pub fn incr(&self, name: &str, by: u64) {
        *self.lock().counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name (BTreeMap order — deterministic).
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock().counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Completed spans in (start, depth) order, so parents precede their
    /// children even though children close first.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.lock().spans.clone();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.depth.cmp(&b.depth))
                .then(a.name.cmp(&b.name))
        });
        spans
    }

    /// Total recorded nanoseconds across all spans with this name.
    #[must_use]
    pub fn sum_ns(&self, name: &str) -> u64 {
        self.lock().spans.iter().filter(|s| s.name == name).map(|s| s.dur_ns).sum()
    }

    /// Total recorded nanoseconds per span name, sorted by name
    /// (BTreeMap order — deterministic). The aggregated view
    /// [`crate::MetricsRegistry::publish_recorder`] exports.
    #[must_use]
    pub fn span_sums(&self) -> Vec<(String, u64)> {
        let mut sums: BTreeMap<String, u64> = BTreeMap::new();
        for span in &self.lock().spans {
            *sums.entry(span.name.clone()).or_insert(0) += span.dur_ns;
        }
        sums.into_iter().collect()
    }

    /// Time a closure under a named span.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    args: Vec<(String, u64)>,
    depth: usize,
    start_ns: u64,
}

/// RAII guard for an open span.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    open: Option<OpenSpan>,
}

impl Span<'_> {
    /// Close the span now and return its duration in nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.open.take().map_or(0, |open| self.recorder.close(open))
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            self.recorder.close(open);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        let (rec, clock) = Recorder::manual();
        let root = rec.span("root");
        clock.advance(100);
        {
            let inner = rec.span_with("child", &[("minsup", 5)]);
            clock.advance(50);
            assert_eq!(inner.finish(), 50);
        }
        clock.advance(10);
        assert_eq!(root.finish(), 160);

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[0].dur_ns, 160);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].start_ns, 100);
        assert_eq!(spans[1].dur_ns, 50);
        assert_eq!(spans[1].args, vec![("minsup".to_owned(), 5)]);
    }

    #[test]
    fn drop_closes_like_finish() {
        let (rec, clock) = Recorder::manual();
        {
            let _span = rec.span("scoped");
            clock.advance(30);
        }
        assert_eq!(rec.sum_ns("scoped"), 30);
        // Depth returned to 0: a new span opens at top level.
        let s = rec.span("after");
        s.finish();
        assert_eq!(rec.spans().last().map(|s| s.depth), Some(0));
    }

    #[test]
    fn counters_accumulate_sorted() {
        let (rec, _clock) = Recorder::manual();
        rec.incr("zeta", 2);
        rec.incr("alpha", 1);
        rec.incr("zeta", 3);
        assert_eq!(rec.counter("zeta"), 5);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(
            rec.counters(),
            vec![("alpha".to_owned(), 1), ("zeta".to_owned(), 5)]
        );
    }

    #[test]
    fn span_sums_aggregate_by_name_sorted() {
        let (rec, clock) = Recorder::manual();
        rec.time("zeta", || clock.advance(5));
        rec.time("alpha", || clock.advance(2));
        rec.time("zeta", || clock.advance(3));
        assert_eq!(
            rec.span_sums(),
            vec![("alpha".to_owned(), 2), ("zeta".to_owned(), 8)]
        );
    }

    #[test]
    fn time_helper_brackets_the_closure() {
        let (rec, clock) = Recorder::manual();
        let out = rec.time("work", || {
            clock.advance(7);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(rec.sum_ns("work"), 7);
    }

    #[test]
    fn record_span_uses_current_depth() {
        let (rec, _clock) = Recorder::manual();
        let root = rec.span("root");
        rec.record_span("accumulated", 5, 9);
        root.finish();
        let spans = rec.spans();
        let acc = spans.iter().find(|s| s.name == "accumulated").map(|s| (s.depth, s.dur_ns));
        assert_eq!(acc, Some((1, 9)));
    }
}
