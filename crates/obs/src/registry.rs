//! A pull-based metrics registry with Prometheus text exposition.
//!
//! Counters, gauges, and histograms are registered once by name and
//! scraped on demand: registration hands back a shared handle
//! (`Arc<Counter>` / `Arc<Gauge>` / `Arc<Histogram>`) that the hot path
//! updates with relaxed atomics, and [`MetricsRegistry::render_prometheus`]
//! walks the registry and renders every metric in the Prometheus text
//! format, version 0.0.4.
//!
//! Naming scheme (see DESIGN.md §11): every metric is prefixed `yv_`,
//! monotonic totals end in `_total`, and latency histograms end in `_us`
//! because the bucket boundaries are integer microseconds (powers of two,
//! see [`Histogram`]) — keeping the renderer free of float formatting and
//! the scrape byte-stable for a given set of atomic readings.
//!
//! Metrics are stored in a `BTreeMap`, so exposition order is the sorted
//! metric name order — deterministic across runs and platforms.

use crate::histogram::{Counter, Histogram};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A shared instantaneous value: set to the latest reading, unlike
/// [`Counter`] which only accumulates. Store sizes, cache populations and
/// allocator readings are gauges.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the current value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a metric renders in the exposition (`# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenderKind {
    Counter,
    Gauge,
}

#[derive(Debug)]
enum Handle {
    /// An incrementing counter owned by the hot path.
    Counter(Arc<Counter>),
    /// A settable value; `kind` controls whether it renders as a
    /// `counter` (monotonic totals republished from another source, e.g.
    /// allocator readings) or a `gauge`.
    Gauge(Arc<Gauge>, RenderKind),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    help: String,
    handle: Handle,
}

/// A named collection of metrics, registered once and scraped on demand.
///
/// Safe to share across server workers: registration takes a short mutex,
/// but the returned handles update lock-free, so the request hot path
/// never contends on the registry itself.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Entry>> {
        // Registry bookkeeping never panics while holding the lock;
        // recover rather than poisoning every future scrape.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or fetch) a monotonic counter. Re-registering an existing
    /// name returns the existing handle; registering a name previously
    /// bound to a different metric kind replaces it (a programming error
    /// surfaced by `debug_assert!` in test builds).
    #[must_use]
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        if let Some(entry) = inner.get(name) {
            if let Handle::Counter(c) = &entry.handle {
                return Arc::clone(c);
            }
            debug_assert!(false, "metric {name} re-registered with a different kind");
        }
        let c = Arc::new(Counter::new());
        inner.insert(
            name.to_owned(),
            Entry { help: help.to_owned(), handle: Handle::Counter(Arc::clone(&c)) },
        );
        c
    }

    /// Register (or fetch) a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.settable(name, help, RenderKind::Gauge)
    }

    /// Register (or fetch) a settable metric that renders as a `counter`:
    /// a monotonic total whose source of truth lives elsewhere (e.g. the
    /// global allocator's byte counts, republished at scrape time).
    #[must_use]
    pub fn counter_value(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.settable(name, help, RenderKind::Counter)
    }

    fn settable(&self, name: &str, help: &str, kind: RenderKind) -> Arc<Gauge> {
        let mut inner = self.lock();
        if let Some(entry) = inner.get(name) {
            if let Handle::Gauge(g, k) = &entry.handle {
                debug_assert!(*k == kind, "metric {name} re-registered with a different kind");
                return Arc::clone(g);
            }
            debug_assert!(false, "metric {name} re-registered with a different kind");
        }
        let g = Arc::new(Gauge::new());
        inner.insert(
            name.to_owned(),
            Entry { help: help.to_owned(), handle: Handle::Gauge(Arc::clone(&g), kind) },
        );
        g
    }

    /// Register (or fetch) a latency histogram (nanosecond samples,
    /// microsecond buckets). Name it with a `_us` suffix: the exposition
    /// emits integer-microsecond `le` bucket boundaries.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.lock();
        if let Some(entry) = inner.get(name) {
            if let Handle::Histogram(h) = &entry.handle {
                return Arc::clone(h);
            }
            debug_assert!(false, "metric {name} re-registered with a different kind");
        }
        let h = Arc::new(Histogram::new());
        inner.insert(
            name.to_owned(),
            Entry { help: help.to_owned(), handle: Handle::Histogram(Arc::clone(&h)) },
        );
        h
    }

    /// Set a gauge in one call (registering it on first use).
    pub fn set_gauge(&self, name: &str, help: &str, value: u64) {
        self.gauge(name, help).set(value);
    }

    /// Publish a [`Recorder`]'s aggregated view into the registry: one
    /// `{prefix}_stage_{span}_us` gauge per span name (total recorded
    /// microseconds) and one `{prefix}_{counter}` gauge per counter.
    /// Gauges, not counters, so republishing after another run replaces
    /// rather than double-counts.
    pub fn publish_recorder(&self, prefix: &str, rec: &Recorder) {
        for (name, ns) in rec.span_sums() {
            self.set_gauge(
                &format!("{prefix}_stage_{name}_us"),
                "Total recorded stage time in microseconds",
                ns / 1_000,
            );
        }
        for (name, value) in rec.counters() {
            // audit:allow(N1) `name` is a recorder counter label (a code constant), not victim data
            self.set_gauge(&format!("{prefix}_{name}"), "Recorder counter", value);
        }
    }

    /// Every scalar metric (counters and gauges) as sorted `(name, value)`
    /// pairs — the machine-readable view `yv bench` writes to JSON.
    /// Histograms are omitted: their scrape form is the bucket series.
    #[must_use]
    pub fn scalar_values(&self) -> Vec<(String, u64)> {
        self.lock()
            .iter()
            .filter_map(|(name, entry)| match &entry.handle {
                Handle::Counter(c) => Some((name.clone(), c.get())),
                Handle::Gauge(g, _) => Some((name.clone(), g.get())),
                Handle::Histogram(_) => None,
            })
            .collect()
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format, version 0.0.4. Histograms emit cumulative
    /// `_bucket{le="..."}` series (integer-microsecond boundaries, the
    /// overflow bucket as `le="+Inf"`), `_sum` (microseconds) and
    /// `_count`, all derived from one [`Histogram::snapshot`].
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use crate::histogram::{Histogram as H, BUCKET_COUNT};
        let mut out = String::new();
        for (name, entry) in self.lock().iter() {
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            match &entry.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Handle::Gauge(g, kind) => {
                    let t = match kind {
                        RenderKind::Counter => "counter",
                        RenderKind::Gauge => "gauge",
                    };
                    out.push_str(&format!("# TYPE {name} {t}\n{name} {}\n", g.get()));
                }
                Handle::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &n) in snap.counts.iter().enumerate() {
                        cumulative += n;
                        if i + 1 == BUCKET_COUNT {
                            // The overflow bucket has no finite bound.
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
                            ));
                        } else {
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                                H::bucket_bound_us(i)
                            ));
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", snap.sum_ns / 1_000));
                    out.push_str(&format!("{name}_count {}\n", snap.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::BUCKET_COUNT;

    #[test]
    fn registration_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("yv_test_total", "a test counter");
        let b = reg.counter("yv_test_total", "ignored on re-register");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        let g = reg.gauge("yv_test_gauge", "a gauge");
        g.set(7);
        assert_eq!(reg.gauge("yv_test_gauge", "").get(), 7);
    }

    #[test]
    fn scalar_values_are_sorted_and_skip_histograms() {
        let reg = MetricsRegistry::new();
        reg.gauge("yv_b", "b").set(2);
        reg.counter("yv_a", "a").add(1);
        let _ = reg.histogram("yv_h_us", "h");
        assert_eq!(
            reg.scalar_values(),
            vec![("yv_a".to_owned(), 1), ("yv_b".to_owned(), 2)]
        );
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("yv_requests_total", "Requests served").add(5);
        reg.gauge("yv_records", "Records resident").set(100);
        reg.counter_value("yv_alloc_bytes_total", "Bytes allocated").set(4096);
        let h = reg.histogram("yv_latency_us", "Request latency");
        h.record_ns(3_000); // bucket 2, bound 4µs
        h.record_ns(u64::MAX); // overflow bucket

        let text = reg.render_prometheus();
        assert!(text.contains("# HELP yv_requests_total Requests served\n"));
        assert!(text.contains("# TYPE yv_requests_total counter\nyv_requests_total 5\n"));
        assert!(text.contains("# TYPE yv_records gauge\nyv_records 100\n"));
        assert!(text.contains("# TYPE yv_alloc_bytes_total counter\nyv_alloc_bytes_total 4096\n"));
        assert!(text.contains("# TYPE yv_latency_us histogram\n"));
        // Cumulative buckets: nothing below 4µs boundary 2, both by +Inf.
        assert!(text.contains("yv_latency_us_bucket{le=\"2\"} 0\n"));
        assert!(text.contains("yv_latency_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("yv_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("yv_latency_us_count 2\n"));
        // One finite bucket line per non-overflow bucket plus +Inf.
        let buckets = text.matches("yv_latency_us_bucket{").count();
        assert_eq!(buckets, BUCKET_COUNT);
        // BTreeMap order: alloc before latency before records before requests.
        let order: Vec<usize> = ["yv_alloc_bytes_total", "yv_latency_us", "yv_records", "yv_requests_total"]
            .iter()
            .map(|n| text.find(&format!("# HELP {n} ")).expect("metric rendered"))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{order:?}");
    }

    #[test]
    fn publish_recorder_exports_span_sums_and_counters() {
        let (rec, clock) = Recorder::manual();
        {
            let _s = rec.span("blocking");
            clock.advance(5_000_000);
        }
        {
            let _s = rec.span("blocking");
            clock.advance(1_000_000);
        }
        rec.incr("pairs_scored", 42);
        let reg = MetricsRegistry::new();
        reg.publish_recorder("yv_pipeline", &rec);
        assert_eq!(reg.gauge("yv_pipeline_stage_blocking_us", "").get(), 6_000);
        assert_eq!(reg.gauge("yv_pipeline_pairs_scored", "").get(), 42);
        // Republishing replaces rather than accumulates.
        reg.publish_recorder("yv_pipeline", &rec);
        assert_eq!(reg.gauge("yv_pipeline_stage_blocking_us", "").get(), 6_000);
    }
}
