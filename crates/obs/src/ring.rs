//! Lock-free capture ring for completed request traces.
//!
//! [`TraceRing`] is a fixed-capacity, power-of-two, multi-producer ring
//! of [`RequestTrace`] values with drop-oldest semantics: producers
//! claim a slot with one `fetch_add` on the head and never wait — not
//! on readers, not on each other. Readers validate slots seqlock-style
//! (read the sequence word, copy the payload, re-read the sequence) and
//! simply discard anything a writer touched mid-copy. The payload is
//! `Copy` and heap-free by construction (see [`crate::ctx`]), so a torn
//! copy is garbage bytes that fail validation, never a dangling pointer
//! that gets dereferenced.
//!
//! Slot protocol, one `AtomicU64` per slot:
//!
//! * `0` — never written.
//! * odd (`2·pos + 1`) — writer for head position `pos` is mid-write.
//! * even nonzero (`2·pos + 2`) — slot holds the trace for position
//!   `pos`, readable.
//!
//! A writer `swap`s its odd marker in (anything previously there is an
//! eviction), writes the payload, then publishes with a compare-exchange
//! to its even marker. If the CAS fails, a lapping writer already
//! claimed the slot and this trace is simply lost — the slot stays in
//! the newer writer's hands. Encoding the position in the sequence word
//! means a reader that observes the same even value twice knows no
//! writer finished in between; a writer stalled for an entire lap while
//! a reader copies is the one (documented, astronomically unlikely at
//! ring sizes ≥ 2× thread count) hole in that argument, and it is
//! bounded by the CAS: the stalled writer fails to publish, so its
//! half-written bytes are never validated as position `pos`.
//!
//! [`TailSampler`] is a second, smaller ring that always retains the
//! traces worth keeping — slower than `slow_ns` or ending in ERR — so
//! a burst of fast requests cannot evict the evidence of an incident.
//! [`TraceSink`] bundles id generation, the main ring, and the sampler
//! behind the one handle the server threads share.

use crate::ctx::{RequestTrace, TraceIdGen};
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<RequestTrace>,
}

// SAFETY: concurrent access to `data` is mediated by the `seq` protocol
// above — writers mutually exclude via swap/CAS on `seq`, and readers
// never trust a copy unless `seq` was stable (even, same position)
// around it. `RequestTrace` is `Copy` with no heap indirection, so a
// discarded torn copy carries no ownership and frees nothing.
unsafe impl Sync for Slot {}

/// Fixed-capacity lock-free MPSC-style trace ring (multi-producer, any
/// number of snapshot readers). Capacity rounds up to a power of two.
pub struct TraceRing {
    mask: u64,
    head: AtomicU64,
    evicted: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .field("evicted", &self.evicted.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// A ring holding up to `capacity` traces (rounded up to a power of
    /// two, minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(RequestTrace::empty()),
            })
            .collect();
        TraceRing {
            mask: (cap as u64) - 1,
            head: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Slot count (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Traces overwritten (or lost to a lapping writer) before anyone
    /// asked for them. Exact: every push past the first fill of a slot
    /// displaces exactly one earlier trace.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Readable traces currently resident, bounded by capacity.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                let seq = s.seq.load(Ordering::Relaxed);
                seq != 0 && seq & 1 == 0
            })
            .count()
    }

    /// Capture a completed trace. Wait-free for the producer: one
    /// `fetch_add`, one `swap`, a payload memcpy, one CAS — no locks,
    /// no retries, no interaction with readers.
    pub fn push(&self, trace: RequestTrace) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let writing = pos.wrapping_mul(2).wrapping_add(1);
        let published = writing.wrapping_add(1);
        // Claim the slot. Whatever was here — a published trace or a
        // stalled older writer's claim — is one eviction.
        let prev = slot.seq.swap(writing, Ordering::Acquire);
        if prev != 0 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: the odd marker in `seq` excludes other writers until
        // they lap, and readers discard copies whose `seq` moved.
        unsafe {
            slot.data.get().write_volatile(trace);
        }
        // Publish — unless a lapping writer already reclaimed the slot,
        // in which case this trace is lost and counted by that writer.
        let _ = slot
            .seq
            .compare_exchange(writing, published, Ordering::Release, Ordering::Relaxed);
    }

    /// Seqlock read of one slot: returns the head position it held and
    /// the trace, or `None` if the slot was empty or a writer was (or
    /// got) in the way.
    fn read_slot(&self, index: usize) -> Option<(u64, RequestTrace)> {
        let slot = &self.slots[index];
        let before = slot.seq.load(Ordering::Acquire);
        if before == 0 || before & 1 == 1 {
            return None;
        }
        // SAFETY: the copy may race a writer; validation below discards
        // it then. `RequestTrace` is `Copy`, so garbage bytes are inert
        // — nothing is dereferenced or dropped before validation.
        let data = unsafe { slot.data.get().read_volatile() };
        fence(Ordering::Acquire);
        let after = slot.seq.load(Ordering::Relaxed);
        if before == after {
            Some(((before - 2) / 2, data))
        } else {
            None
        }
    }

    /// Find a trace by id. O(capacity) scan — `TRACE` is an operator
    /// command, not a hot path.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<RequestTrace> {
        if id == 0 {
            return None;
        }
        (0..self.slots.len())
            .filter_map(|i| self.read_slot(i))
            .find(|(_, t)| t.id == id)
            .map(|(_, t)| t)
    }

    /// Up to `k` most recent traces, newest first.
    #[must_use]
    pub fn recent(&self, k: usize) -> Vec<RequestTrace> {
        let mut entries: Vec<(u64, RequestTrace)> =
            (0..self.slots.len()).filter_map(|i| self.read_slot(i)).collect();
        entries.sort_unstable_by_key(|&(pos, _)| std::cmp::Reverse(pos));
        entries.truncate(k);
        entries.into_iter().map(|(_, t)| t).collect()
    }
}

/// Tail-sampling reservoir: a bounded ring that keeps every trace that
/// ran slower than `slow_ns` or answered ERR, so incident evidence
/// survives even when the main ring churns through fast requests.
#[derive(Debug)]
pub struct TailSampler {
    slow_ns: u64,
    sampled: AtomicU64,
    ring: TraceRing,
}

impl TailSampler {
    /// A sampler retaining traces with `total_ns >= slow_ns` or
    /// `!ok` into a ring of `capacity` slots.
    #[must_use]
    pub fn new(slow_ns: u64, capacity: usize) -> TailSampler {
        TailSampler {
            slow_ns,
            sampled: AtomicU64::new(0),
            ring: TraceRing::new(capacity),
        }
    }

    /// Offer a completed trace; retains it iff it meets the tail
    /// policy. Returns whether it was retained.
    pub fn offer(&self, trace: &RequestTrace) -> bool {
        if trace.total_ns >= self.slow_ns || !trace.ok {
            self.sampled.fetch_add(1, Ordering::Relaxed);
            self.ring.push(*trace);
            true
        } else {
            false
        }
    }

    /// Traces retained so far (including any since evicted).
    #[must_use]
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Find a retained trace by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<RequestTrace> {
        self.ring.get(id)
    }

    /// Up to `k` most recently retained traces, newest first.
    #[must_use]
    pub fn recent(&self, k: usize) -> Vec<RequestTrace> {
        self.ring.recent(k)
    }
}

/// Point-in-time counters describing a [`TraceSink`], for `TOP` and the
/// `yv_trace_ring_*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Main-ring slot count.
    pub capacity: u64,
    /// Readable traces currently in the main ring.
    pub occupancy: u64,
    /// Traces ever captured into the main ring.
    pub captured: u64,
    /// Traces evicted from the main ring (drop-oldest).
    pub evicted: u64,
    /// Traces the tail-sampler retained (slow or ERR).
    pub sampled: u64,
}

/// Everything the serve loop shares for tracing: the id generator, the
/// main capture ring, and the tail-sampling reservoir. One instance per
/// server; all methods are lock-free.
#[derive(Debug)]
pub struct TraceSink {
    ids: TraceIdGen,
    ring: TraceRing,
    sampler: TailSampler,
    capture: bool,
}

impl TraceSink {
    /// A sink with a main ring of `capacity` slots, a tail reservoir a
    /// quarter that size (minimum 16), trace ids seeded by `seed`, and
    /// the tail policy keeping traces at or above `slow_ns`.
    #[must_use]
    pub fn new(capacity: usize, slow_ns: u64, seed: u64, capture: bool) -> TraceSink {
        TraceSink {
            ids: TraceIdGen::new(seed),
            ring: TraceRing::new(capacity),
            sampler: TailSampler::new(slow_ns, (capacity / 4).max(16)),
            capture,
        }
    }

    /// True when completed traces are being retained. When false,
    /// requests still get trace ids (the token stays on the wire) but
    /// `capture` is a no-op — the configuration the `trace_overhead`
    /// bench compares against.
    #[must_use]
    pub fn capture_enabled(&self) -> bool {
        self.capture
    }

    /// Next trace id (deterministic per seed, never 0).
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.ids.next_id()
    }

    /// Retain a completed trace in the main ring and, if it meets the
    /// tail policy, the reservoir. Lock-free; never blocks a producer.
    /// Returns whether the tail sampler retained it (the caller's cue to
    /// publish it as the last slow trace).
    pub fn capture(&self, trace: RequestTrace) -> bool {
        if !self.capture {
            return false;
        }
        let sampled = self.sampler.offer(&trace);
        self.ring.push(trace);
        sampled
    }

    /// Look a trace up by id — the reservoir first (slow/ERR traces
    /// live longest there), then the main ring.
    #[must_use]
    pub fn find(&self, id: u64) -> Option<RequestTrace> {
        self.sampler.get(id).or_else(|| self.ring.get(id))
    }

    /// Up to `k` most recently retained slow/ERR traces, newest first.
    #[must_use]
    pub fn recent_slow(&self, k: usize) -> Vec<RequestTrace> {
        self.sampler.recent(k)
    }

    /// Current counters for `TOP` and metrics exposition.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        RingStats {
            capacity: self.ring.capacity() as u64,
            occupancy: self.ring.occupancy() as u64,
            captured: self.ring.pushed(),
            evicted: self.ring.evicted(),
            sampled: self.sampler.sampled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn trace_with(id: u64, conn: u64, total_ns: u64, ok: bool) -> RequestTrace {
        let mut t = RequestTrace::empty();
        t.id = id;
        t.conn = conn;
        t.command = "QUERY";
        t.ok = ok;
        t.total_ns = total_ns;
        t
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(TraceRing::new(0).capacity(), 2);
        assert_eq!(TraceRing::new(5).capacity(), 8);
        assert_eq!(TraceRing::new(512).capacity(), 512);
    }

    #[test]
    fn push_get_and_recent_drop_oldest() {
        let ring = TraceRing::new(4);
        for i in 1..=10u64 {
            ring.push(trace_with(i, i, i * 100, true));
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.evicted(), 6);
        assert_eq!(ring.occupancy(), 4);
        // Only the newest `capacity` survive.
        for id in 1..=6u64 {
            assert!(ring.get(id).is_none(), "id {id} should be evicted");
        }
        for id in 7..=10u64 {
            let t = ring.get(id).unwrap_or_else(|| panic!("id {id} resident"));
            assert_eq!(t.total_ns, id * 100);
        }
        let recent: Vec<u64> = ring.recent(3).iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![10, 9, 8]);
        assert!(ring.get(0).is_none());
    }

    #[test]
    fn tail_sampler_keeps_slow_and_err_only() {
        let sampler = TailSampler::new(1_000_000, 16);
        assert!(!sampler.offer(&trace_with(1, 1, 500, true)));
        assert!(sampler.offer(&trace_with(2, 1, 2_000_000, true)));
        assert!(sampler.offer(&trace_with(3, 1, 10, false)));
        assert_eq!(sampler.sampled(), 2);
        assert!(sampler.get(1).is_none());
        assert!(sampler.get(2).is_some());
        let recent: Vec<u64> = sampler.recent(8).iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![3, 2]);
    }

    #[test]
    fn sink_routes_and_counts() {
        let sink = TraceSink::new(8, 1_000, 7, true);
        assert!(sink.capture_enabled());
        let id = sink.next_id();
        assert_ne!(id, 0);
        assert!(sink.capture(trace_with(id, 3, 5_000, true)), "slow trace tail-sampled");
        assert!(!sink.capture(trace_with(id + 1, 3, 10, true)), "fast ok trace not sampled");
        let stats = sink.stats();
        assert_eq!(stats.capacity, 8);
        assert_eq!(stats.captured, 2);
        assert_eq!(stats.occupancy, 2);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.sampled, 1);
        assert_eq!(sink.find(id).map(|t| t.total_ns), Some(5_000));
        assert_eq!(sink.recent_slow(4).len(), 1);
    }

    #[test]
    fn disabled_sink_still_issues_ids_but_drops_traces() {
        let sink = TraceSink::new(8, 0, 1, false);
        assert!(!sink.capture_enabled());
        let id = sink.next_id();
        assert!(!sink.capture(trace_with(id, 1, 9_999, false)));
        assert!(sink.find(id).is_none());
        assert_eq!(sink.stats().captured, 0);
    }

    /// Seqlock soundness under contention: N producers push traces whose
    /// fields are linked by an invariant while readers continuously scan.
    /// Any torn read would surface as a trace violating the invariant.
    #[test]
    fn contended_reads_are_never_torn_and_evictions_are_exact() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 2_000;
        let ring = TraceRing::new(16);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let id = (p << 32) | (i + 1);
                        // Invariant: total_ns == id * 3, conn == id ^ 0x5a5a.
                        ring.push(trace_with(id, id ^ 0x5a5a, id.wrapping_mul(3), true));
                    }
                });
            }
            for _ in 0..2 {
                let (ring, stop) = (&ring, &stop);
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        for t in ring.recent(16) {
                            assert_eq!(t.total_ns, t.id.wrapping_mul(3), "torn read");
                            assert_eq!(t.conn, t.id ^ 0x5a5a, "torn read");
                            seen += 1;
                        }
                        if done {
                            break;
                        }
                    }
                    assert!(seen > 0, "readers observed traces");
                });
            }
            // Producers finish, then readers are released.
            // (Scope join order: spawn handles joined at scope end; stop
            // flag flipped by a watcher thread once producers are done.)
            let ring_ref = &ring;
            let stop_ref = &stop;
            scope.spawn(move || {
                while ring_ref.pushed() < PRODUCERS * PER_PRODUCER {
                    std::thread::yield_now();
                }
                stop_ref.store(true, Ordering::Relaxed);
            });
        });
        let total = PRODUCERS * PER_PRODUCER;
        assert_eq!(ring.pushed(), total);
        // Exactness: every push after the first fill of each slot evicts
        // exactly one prior trace, even under contention.
        assert_eq!(ring.evicted(), total - ring.capacity() as u64);
        // Quiescent state: every slot holds a valid, untorn trace.
        let resident = ring.recent(16);
        assert_eq!(resident.len(), 16);
        for t in &resident {
            assert_eq!(t.total_ns, t.id.wrapping_mul(3));
        }
    }
}
