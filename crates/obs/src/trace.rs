//! Sink backends: a human timings table and a Chrome-trace-format JSON
//! emitter (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Both renderings are pure functions of the recorded spans/counters, so
//! with a [`ManualClock`](crate::ManualClock) they are byte-identical
//! across runs — the property the determinism tests pin down.

use crate::recorder::{Recorder, SpanRecord};

/// Render the recorder as Chrome trace JSON: one complete (`"ph":"X"`)
/// event per span (timestamps in integer microseconds) and one counter
/// (`"ph":"C"`) event per named counter.
#[must_use]
pub fn chrome_trace(rec: &Recorder) -> String {
    let spans = rec.spans();
    let last_end_us = spans.iter().map(|s| s.end_ns() / 1_000).max().unwrap_or(0);
    let mut events = Vec::new();
    for span in &spans {
        let mut args = format!("{{\"depth\":{}", span.depth);
        for (key, value) in &span.args {
            args.push_str(&format!(",\"{}\":{value}", escape(key)));
        }
        args.push('}');
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"yv\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":0,\"args\":{args}}}",
            escape(&span.name),
            span.start_ns / 1_000,
            span.dur_ns / 1_000,
        ));
    }
    for (name, value) in rec.counters() {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"yv\",\"ph\":\"C\",\"ts\":{last_end_us},\
             \"pid\":0,\"args\":{{\"value\":{value}}}}}",
            escape(&name),
        ));
    }
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n", events.join(","))
}

/// Render an aggregated per-stage table: calls, total time, mean, and
/// share of the recorded wall interval. Stages appear in first-start
/// order, indented by nesting depth.
#[must_use]
pub fn timings_table(rec: &Recorder) -> String {
    let spans = rec.spans();
    if spans.is_empty() {
        return "no spans recorded\n".to_owned();
    }
    let wall_ns = {
        let start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    };

    // Aggregate by name, keeping first-start order and minimum depth.
    struct Agg {
        name: String,
        depth: usize,
        calls: u64,
        total_ns: u64,
    }
    let mut aggs: Vec<Agg> = Vec::new();
    for span in &spans {
        match aggs.iter_mut().find(|a| a.name == span.name) {
            Some(agg) => {
                agg.calls += 1;
                agg.total_ns += span.dur_ns;
                agg.depth = agg.depth.min(span.depth);
            }
            None => aggs.push(Agg {
                name: span.name.clone(),
                depth: span.depth,
                calls: 1,
                total_ns: span.dur_ns,
            }),
        }
    }

    let mut out = format!("{:<28} {:>6} {:>12} {:>12} {:>7}\n", "stage", "calls", "total", "mean", "share");
    for agg in &aggs {
        let label = format!("{}{}", "  ".repeat(agg.depth), agg.name);
        let share = if wall_ns == 0 {
            0.0
        } else {
            100.0 * agg.total_ns as f64 / wall_ns as f64
        };
        out.push_str(&format!(
            "{:<28} {:>6} {:>12} {:>12} {:>6.1}%\n",
            label,
            agg.calls,
            fmt_ns(agg.total_ns),
            fmt_ns(agg.total_ns / agg.calls.max(1)),
            share,
        ));
    }
    let counters = rec.counters();
    if !counters.is_empty() {
        out.push_str(&format!("\n{:<28} {:>12}\n", "counter", "value"));
        for (name, value) in counters {
            out.push_str(&format!("{name:<28} {value:>12}\n"));
        }
    }
    out
}

/// Human duration: integer nanoseconds rendered at a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{}.{:03}s", ns / 1_000_000_000, (ns % 1_000_000_000) / 1_000_000)
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Minimal JSON string escaping for span/counter names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn scripted() -> Recorder {
        let (rec, clock) = Recorder::manual();
        let root = rec.span("pipeline");
        clock.advance(1_000_000);
        {
            let mine = rec.span_with("mine", &[("minsup", 5)]);
            clock.advance(2_000_000);
            mine.finish();
        }
        rec.incr("blocks", 3);
        root.finish();
        rec
    }

    #[test]
    fn chrome_trace_has_span_and_counter_events() {
        let trace = chrome_trace(&scripted());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains(
            "{\"name\":\"pipeline\",\"cat\":\"yv\",\"ph\":\"X\",\"ts\":0,\"dur\":3000,\
             \"pid\":0,\"tid\":0,\"args\":{\"depth\":0}}"
        ));
        assert!(trace.contains("\"name\":\"mine\""));
        assert!(trace.contains("\"minsup\":5"));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"value\":3"));
        assert!(trace.trim_end().ends_with('}'));
    }

    #[test]
    fn timings_table_aggregates_and_indents() {
        let table = timings_table(&scripted());
        assert!(table.contains("pipeline"));
        assert!(table.contains("  mine"), "child is indented: {table}");
        assert!(table.contains("3.000ms"));
        assert!(table.contains("2.000ms"));
        assert!(table.contains("blocks"));
    }

    #[test]
    fn empty_recorder_renders_gracefully() {
        let (rec, _clock) = Recorder::manual();
        assert_eq!(timings_table(&rec), "no spans recorded\n");
        assert_eq!(chrome_trace(&rec), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_030_000), "2.030ms");
        assert_eq!(fmt_ns(61_001_000_000), "61.001s");
    }

    #[test]
    fn names_are_json_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
