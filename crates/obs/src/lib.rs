//! # yv-obs
//!
//! Zero-dependency structured tracing and metrics for the uncertain-ER
//! stack. The paper's whole evaluation (Section 6) is about *measured*
//! behaviour — blocking quality and mining runtime across minsup levels —
//! so every pipeline stage and the query server report through this crate.
//!
//! Four pieces:
//!
//! - [`Clock`] / [`MonotonicClock`] / [`ManualClock`] — clock injection.
//!   This crate is the **only sanctioned wall-clock owner** in the
//!   workspace: the yv-audit S1 rule bans `Instant::now` everywhere else,
//!   so deterministic code can only read time through an injected clock
//!   (and tests substitute a [`ManualClock`] for byte-identical traces).
//! - [`Recorder`] / [`Span`] — nested named spans plus counters. Blocking
//!   records per-minsup-iteration spans (`mine`, `find_support`, `score`,
//!   `ng_filter`), the pipeline records stage spans (`blocking`,
//!   `extract`, `score`, `resolve`).
//! - [`Histogram`] / [`Counter`] — lock-free fixed-bucket latency
//!   histograms with p50/p95/p99 summaries, shared across `yv serve`
//!   workers and reported per command kind in `STATS`. Histograms take
//!   consistent [`HistogramSnapshot`]s and [`Histogram::merge`] exactly.
//! - [`TraceCtx`] / [`TraceRing`] / [`TraceSink`] — request-scoped
//!   tracing: seeded deterministic trace ids, single-owner per-request
//!   span capture ([`RequestTrace`] is `Copy` and heap-free), and a
//!   lock-free seqlock capture ring with a tail-sampling reservoir,
//!   surfaced by `yv serve` as `TOP`/`TRACE` protocol commands.
//! - [`WindowedHistogram`] / [`WindowedCounter`] / [`SloRule`] — windowed
//!   telemetry: rings of per-bucket snapshot deltas (60 × 1s and 60 × 1m
//!   tiers) rotated lazily from the injected clock, plus multi-window SLO
//!   burn-rate evaluation (`ok`/`warning`/`firing`), surfaced by
//!   `yv serve` as the `HISTORY` command, `yv_slo_*` gauges and the
//!   `telemetry.yvt` on-disk history.
//! - [`MetricsRegistry`] — a pull-based registry of named counters,
//!   [`Gauge`]s and histograms with a Prometheus text-format (0.0.4)
//!   renderer, scraped by `yv serve`'s `METRICS` command and
//!   `--metrics-addr` sidecar listener.
//! - [`alloc_stats`] / [`CountingAlloc`] — allocation accounting via a
//!   counting global allocator, installed by the `global-alloc` feature
//!   (forwarded by `yv-cli`'s default `alloc-metrics` feature).
//! - [`chrome_trace`] / [`timings_table`] — sinks: Chrome-trace JSON
//!   (`yv block --trace-json out.json`) and a human stage table
//!   (`yv block --timings`).
//!
//! ```
//! use yv_obs::Recorder;
//!
//! let (rec, clock) = Recorder::manual();
//! {
//!     let _stage = rec.span("mine");
//!     clock.advance(1_000_000); // tests control time explicitly
//! }
//! rec.incr("mfis_mined", 42);
//! assert_eq!(rec.sum_ns("mine"), 1_000_000);
//! assert!(yv_obs::chrome_trace(&rec).contains("\"name\":\"mine\""));
//! ```

pub mod alloc;
pub mod clock;
pub mod ctx;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod trace;
pub mod window;

pub use alloc::{alloc_stats, reset_peak, AllocStats, CountingAlloc};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use ctx::{RequestTrace, TraceCtx, TraceIdGen, TraceSpan, MAX_SPAN_ARGS, MAX_TRACE_SPANS};
pub use histogram::{Counter, Histogram, HistogramSnapshot, LatencySummary, BUCKET_COUNT};
pub use recorder::{Recorder, Span, SpanRecord};
pub use registry::{Gauge, MetricsRegistry};
pub use ring::{RingStats, TailSampler, TraceRing, TraceSink};
pub use trace::{chrome_trace, timings_table};
pub use window::{
    ClosedBucket, SloRule, SloState, SloStatus, Tier, WindowView, WindowedCounter,
    WindowedHistogram, WINDOW_BUCKETS,
};
