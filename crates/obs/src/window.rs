//! Time-bucketed telemetry windows and SLO burn-rate evaluation.
//!
//! Every metric the registry exposes is cumulative since process start —
//! useless for "p99 over the last minute". This module derives *recent*
//! views without touching the recording hot path: a [`WindowedHistogram`]
//! owns a fixed ring of closed per-bucket [`HistogramSnapshot`] deltas per
//! tier (60 × 1s and 60 × 1m), rotated lazily from the injected [`Clock`].
//! Rotation takes one snapshot of the source histogram and subtracts the
//! previous boundary snapshot ([`HistogramSnapshot::sub`]), so recording
//! stays a handful of relaxed atomic ops and all windowing cost is paid
//! by the reader/ticker.
//!
//! Rotation is **lazy and idempotent**: any reader (the server tick, a
//! `HISTORY` request, an SLO evaluation) calls `rotate()` first, and under
//! a [`ManualClock`] two servers fed the same requests and clock advances
//! produce byte-identical windows — no background thread required for
//! correctness. Samples observed since the previous rotation are
//! attributed to the most recently closed bucket; with the server ticking
//! a few times per bucket that is the bucket they were recorded in.
//!
//! [`SloRule`] implements multi-window burn-rate alerting over those
//! windows: with objective `p` and threshold `T`, the error budget is
//! `1 - p` and the burn rate of a window is
//! `share_of_samples_over_T / budget` (1.0 = consuming budget exactly as
//! fast as allowed). The rule fires when both the long window and the
//! short window (`window/6`, min 1) burn at ≥ 100%, warns when either
//! shows elevated burn, and recovers to ok as the windows drain.
//!
//! [`ManualClock`]: crate::clock::ManualClock

use std::sync::Arc;
use std::sync::Mutex;

use crate::clock::Clock;
use crate::histogram::{Counter, Histogram, HistogramSnapshot};

/// Buckets per tier ring: 60 seconds of 1s buckets, 60 minutes of 1m.
pub const WINDOW_BUCKETS: usize = 60;

/// Rollup granularities. `Seconds` answers "the last minute at 1s
/// resolution", `Minutes` answers "the last hour at 1m resolution".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Seconds,
    Minutes,
}

impl Tier {
    /// Bucket width in nanoseconds.
    #[must_use]
    pub fn width_ns(self) -> u64 {
        match self {
            Tier::Seconds => 1_000_000_000,
            Tier::Minutes => 60_000_000_000,
        }
    }

    /// The wire label (`s` / `m`) used by `HISTORY tier=`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Seconds => "s",
            Tier::Minutes => "m",
        }
    }

    #[must_use]
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "s" => Some(Tier::Seconds),
            "m" => Some(Tier::Minutes),
            _ => None,
        }
    }

    /// Stable on-disk tag for telemetry frames.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Tier::Seconds => 0,
            Tier::Minutes => 1,
        }
    }

    #[must_use]
    pub fn from_code(code: u8) -> Option<Tier> {
        match code {
            0 => Some(Tier::Seconds),
            1 => Some(Tier::Minutes),
            _ => None,
        }
    }
}

/// A bucket that just closed during rotation — what the server persists
/// to `telemetry.yvt`. `epoch` is the bucket's index since clock origin
/// (`bucket start = epoch * tier.width_ns()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedBucket {
    pub tier: Tier,
    pub epoch: u64,
    pub delta: HistogramSnapshot,
}

/// One tier's ring: the last [`WINDOW_BUCKETS`] closed deltas, keyed by
/// epoch so wrapped slots are self-invalidating (a slot whose stored
/// epoch is outside the queried window is simply skipped — rotation never
/// zeroes stale slots, staying O(1) even across long idle gaps).
#[derive(Debug)]
struct Ring<T: Copy> {
    width_ns: u64,
    slots: Vec<Option<(u64, T)>>,
    /// Epoch of the currently *open* bucket; everything below is closed.
    open_epoch: u64,
}

impl<T: Copy> Ring<T> {
    fn new(width_ns: u64) -> Self {
        Ring { width_ns, slots: vec![None; WINDOW_BUCKETS], open_epoch: 0 }
    }

    fn current_epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.width_ns
    }

    fn get(&self, epoch: u64) -> Option<T> {
        match self.slots[(epoch % WINDOW_BUCKETS as u64) as usize] {
            Some((e, value)) if e == epoch => Some(value),
            _ => None,
        }
    }

    fn put(&mut self, epoch: u64, value: T) {
        let i = (epoch % WINDOW_BUCKETS as u64) as usize;
        self.slots[i] = Some((epoch, value));
    }

    /// The epoch views anchor at: the clock's epoch, or the open epoch
    /// when a replayed (restored) bucket has pushed it ahead of a
    /// freshly restarted clock.
    fn anchor_epoch(&self, now_ns: u64) -> u64 {
        self.current_epoch(now_ns).max(self.open_epoch)
    }

    /// Closed buckets with `epoch ∈ [cur - window, cur)`, ascending.
    fn collect(&self, cur: u64, window: usize) -> Vec<(u64, T)> {
        let lo = cur.saturating_sub(window.min(WINDOW_BUCKETS) as u64);
        let mut out: Vec<(u64, T)> = self
            .slots
            .iter()
            .filter_map(|slot| *slot)
            .filter(|&(e, _)| e >= lo && e < cur)
            .collect();
        out.sort_unstable_by_key(|&(e, _)| e);
        out
    }
}

/// A recent-window view over one tier, as returned by
/// [`WindowedHistogram::window`].
#[derive(Debug, Clone)]
pub struct WindowView {
    pub tier: Tier,
    /// Buckets requested (clamped to [`WINDOW_BUCKETS`]).
    pub window: usize,
    /// The currently open epoch; the view covers `[now_epoch - window,
    /// now_epoch)`.
    pub now_epoch: u64,
    /// All in-window samples merged into one snapshot.
    pub merged: HistogramSnapshot,
    /// Non-empty closed buckets in the window, ascending by epoch.
    pub buckets: Vec<(u64, HistogramSnapshot)>,
}

/// One tier's ring plus the not-yet-closed samples accumulating toward
/// its open bucket.
#[derive(Debug)]
struct HistTier {
    tier: Tier,
    ring: Ring<HistogramSnapshot>,
    pending: HistogramSnapshot,
}

impl HistTier {
    fn new(tier: Tier, now_ns: u64) -> Self {
        let mut ring = Ring::new(tier.width_ns());
        ring.open_epoch = ring.current_epoch(now_ns);
        HistTier { tier, ring, pending: HistogramSnapshot::default() }
    }

    fn rotate(&mut self, delta: &HistogramSnapshot, now_ns: u64, closed: &mut Vec<ClosedBucket>) {
        if delta.count() > 0 {
            self.pending = self.pending.merge(delta);
        }
        let cur = self.ring.current_epoch(now_ns);
        if cur <= self.ring.open_epoch {
            return;
        }
        if self.pending.count() > 0 {
            // Close into the most recently passed bucket, merging with
            // anything already there (a replayed bucket, or an earlier
            // close into the same epoch).
            let epoch = cur - 1;
            let merged = match self.ring.get(epoch) {
                Some(prior) => prior.merge(&self.pending),
                None => self.pending,
            };
            self.ring.put(epoch, merged);
            closed.push(ClosedBucket { tier: self.tier, epoch, delta: merged });
            self.pending = HistogramSnapshot::default();
        }
        self.ring.open_epoch = cur;
    }
}

/// Ring-of-snapshots rollup over a cumulative [`Histogram`].
///
/// All mutation happens under one mutex on the rotate/read path; the
/// source histogram's recording path is untouched (the bench gate pins
/// windowed rollup within 5% of plain traced serving).
#[derive(Debug)]
pub struct WindowedHistogram {
    source: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    inner: Mutex<Tiers>,
}

#[derive(Debug)]
struct Tiers {
    seconds: HistTier,
    minutes: HistTier,
    /// Cumulative source snapshot at the last rotation.
    last: HistogramSnapshot,
}

impl WindowedHistogram {
    #[must_use]
    pub fn new(source: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now_nanos();
        let last = source.snapshot();
        let tiers = Tiers {
            seconds: HistTier::new(Tier::Seconds, now),
            minutes: HistTier::new(Tier::Minutes, now),
            last,
        };
        WindowedHistogram { source, clock, inner: Mutex::new(tiers) }
    }

    /// The histogram this rollup windows over.
    #[must_use]
    pub fn source(&self) -> &Arc<Histogram> {
        &self.source
    }

    /// Fold newly recorded samples into the open buckets, close every
    /// bucket boundary the clock has passed, and return the newly closed
    /// non-empty buckets (for persistence). Idempotent: a second call at
    /// the same instant returns nothing.
    pub fn rotate(&self) -> Vec<ClosedBucket> {
        let now = self.clock.now_nanos();
        let snap = self.source.snapshot();
        let mut closed = Vec::new();
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let delta = snap.sub(&inner.last).unwrap_or_default();
        inner.seconds.rotate(&delta, now, &mut closed);
        inner.minutes.rotate(&delta, now, &mut closed);
        inner.last = snap;
        closed
    }

    /// Rotate, then merge the last `window` closed buckets of `tier`.
    #[must_use]
    pub fn window(&self, tier: Tier, window: usize) -> WindowView {
        let _ = self.rotate();
        let now = self.clock.now_nanos();
        let window = window.clamp(1, WINDOW_BUCKETS);
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let ring = match tier {
            Tier::Seconds => &inner.seconds.ring,
            Tier::Minutes => &inner.minutes.ring,
        };
        let cur = ring.anchor_epoch(now);
        let buckets = ring.collect(cur, window);
        let merged = buckets
            .iter()
            .fold(HistogramSnapshot::default(), |acc, (_, delta)| acc.merge(delta));
        WindowView { tier, window, now_epoch: cur, merged, buckets }
    }

    /// Re-install a bucket persisted before a restart (telemetry.yvt
    /// replay). The open epoch advances past the replayed bucket so a
    /// later rotation cannot close an older epoch over it.
    pub fn restore(&self, bucket: ClosedBucket) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let tier = match bucket.tier {
            Tier::Seconds => &mut inner.seconds,
            Tier::Minutes => &mut inner.minutes,
        };
        tier.ring.put(bucket.epoch, bucket.delta);
        tier.ring.open_epoch = tier.ring.open_epoch.max(bucket.epoch + 1);
    }
}

/// Ring-of-deltas rollup over a cumulative [`Counter`] (seconds tier
/// only — counters answer "how many in the last N seconds").
#[derive(Debug)]
pub struct WindowedCounter {
    source: Arc<Counter>,
    clock: Arc<dyn Clock>,
    inner: Mutex<CounterRing>,
}

#[derive(Debug)]
struct CounterRing {
    ring: Ring<u64>,
    pending: u64,
    last: u64,
}

impl WindowedCounter {
    #[must_use]
    pub fn new(source: Arc<Counter>, clock: Arc<dyn Clock>) -> Self {
        let mut ring = Ring::new(Tier::Seconds.width_ns());
        ring.open_epoch = ring.current_epoch(clock.now_nanos());
        let last = source.get();
        WindowedCounter { source, clock, inner: Mutex::new(CounterRing { ring, pending: 0, last }) }
    }

    /// Close passed bucket boundaries (idempotent, lazy — see
    /// [`WindowedHistogram::rotate`]).
    pub fn rotate(&self) {
        let now = self.clock.now_nanos();
        let value = self.source.get();
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.pending += value.saturating_sub(inner.last);
        inner.last = value;
        let cur = inner.ring.current_epoch(now);
        if cur <= inner.ring.open_epoch {
            return;
        }
        if inner.pending > 0 {
            let epoch = cur - 1;
            let merged = inner.ring.get(epoch).unwrap_or(0) + inner.pending;
            inner.ring.put(epoch, merged);
            inner.pending = 0;
        }
        inner.ring.open_epoch = cur;
    }

    /// Rotate, then sum the increments of the last `window` seconds.
    #[must_use]
    pub fn sum(&self, window: usize) -> u64 {
        self.rotate();
        let now = self.clock.now_nanos();
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner
            .ring
            .collect(inner.ring.anchor_epoch(now), window.clamp(1, WINDOW_BUCKETS))
            .iter()
            .map(|&(_, n)| n)
            .sum()
    }
}

// ------------------------------------------------------------------ SLO

/// Alert state of one [`SloRule`], published as a `yv_slo_*_state` gauge
/// (0 = ok, 1 = warning, 2 = firing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    Ok,
    Warning,
    Firing,
}

impl SloState {
    #[must_use]
    pub fn as_u64(self) -> u64 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Firing => 2,
        }
    }

    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Firing => "firing",
        }
    }
}

/// One evaluation of an [`SloRule`]: burn rates are in percent (100 =
/// consuming the error budget exactly as fast as the objective allows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloStatus {
    pub state: SloState,
    pub burn_long_pct: u64,
    pub burn_short_pct: u64,
}

/// A latency objective over a windowed metric: "`p`-quantile of `metric`
/// under `threshold_us`, judged over a `window`-second long window".
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The windowed metric (a server command kind, e.g. `query`).
    pub metric: String,
    /// Objective quantile in `(0, 1)`, e.g. 0.99.
    pub p: f64,
    pub threshold_us: u64,
    /// Long-window length in seconds-tier buckets.
    pub window: usize,
}

impl SloRule {
    /// Parse the `--slo` flag grammar: `[metric:]pQQ<MICROS/WINDOW`,
    /// e.g. `p99<5000/60` or `resolve:p95<20000/30`.
    pub fn parse(spec: &str) -> Result<SloRule, String> {
        let bad =
            |why: &str| format!("bad --slo '{spec}': {why} (expected [metric:]p99<MICROS/WINDOW)");
        let (metric, rest) = match spec.split_once(':') {
            Some((m, rest)) => (m, rest),
            None => ("query", spec),
        };
        if metric.is_empty() || !metric.chars().all(|c| c.is_ascii_lowercase()) {
            return Err(bad("metric must be a lowercase command kind"));
        }
        let rest = rest.strip_prefix('p').ok_or_else(|| bad("quantile must start with 'p'"))?;
        let (digits, rest) = rest.split_once('<').ok_or_else(|| bad("missing '<'"))?;
        if digits.is_empty() || digits.len() > 4 || !digits.chars().all(|c| c.is_ascii_digit()) {
            return Err(bad("quantile digits must be 1-4 numerals (p50, p99, p999)"));
        }
        let p = digits.parse::<f64>().map_err(|_| bad("unparseable quantile"))?
            / 10f64.powi(digits.len() as i32);
        if !(0.0..1.0).contains(&p) || p == 0.0 {
            return Err(bad("quantile must be in (0, 1)"));
        }
        let (micros, window) = rest.split_once('/').ok_or_else(|| bad("missing '/WINDOW'"))?;
        let threshold_us = micros.parse::<u64>().map_err(|_| bad("unparseable MICROS"))?;
        if threshold_us == 0 {
            return Err(bad("MICROS must be positive"));
        }
        let window = window.parse::<usize>().map_err(|_| bad("unparseable WINDOW"))?;
        if window == 0 || window > WINDOW_BUCKETS {
            return Err(bad("WINDOW must be 1..=60 seconds"));
        }
        Ok(SloRule { metric: metric.to_string(), p, threshold_us, window })
    }

    /// The short (fast-burn) window paired with the long one.
    #[must_use]
    pub fn short_window(&self) -> usize {
        (self.window / 6).max(1)
    }

    /// Samples provably over the threshold: full buckets whose floor is
    /// at or above it. In-bucket position is unknowable, so a bucket
    /// straddling the threshold counts as under — the evaluator is
    /// deliberately conservative about firing.
    #[must_use]
    pub fn over_threshold(&self, snap: &HistogramSnapshot) -> u64 {
        snap.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| Histogram::bucket_floor_us(i) >= self.threshold_us)
            .map(|(_, &n)| n)
            .sum()
    }

    fn burn_pct(&self, snap: &HistogramSnapshot) -> u64 {
        let total = snap.count();
        if total == 0 {
            return 0;
        }
        let over = self.over_threshold(snap);
        let budget = 1.0 - self.p;
        let burn = (over as f64 / total as f64) / budget;
        (burn * 100.0).round() as u64
    }

    /// Multi-window burn-rate evaluation. Firing needs *both* windows hot
    /// (the classic guard against alerting on long-gone spikes); a hot
    /// short window alone, or a half-burned long window, warns.
    #[must_use]
    pub fn evaluate(&self, long: &HistogramSnapshot, short: &HistogramSnapshot) -> SloStatus {
        let burn_long_pct = self.burn_pct(long);
        let burn_short_pct = self.burn_pct(short);
        let state = if burn_long_pct >= 100 && burn_short_pct >= 100 {
            SloState::Firing
        } else if burn_long_pct >= 50 || burn_short_pct >= 100 {
            SloState::Warning
        } else {
            SloState::Ok
        };
        SloStatus { state, burn_long_pct, burn_short_pct }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    const US: u64 = 1_000;
    const SEC: u64 = 1_000_000_000;

    fn setup() -> (Arc<Histogram>, Arc<ManualClock>, WindowedHistogram) {
        let h = Arc::new(Histogram::new());
        let clock = Arc::new(ManualClock::new());
        let w = WindowedHistogram::new(Arc::clone(&h), clock.clone() as Arc<dyn Clock>);
        (h, clock, w)
    }

    #[test]
    fn samples_land_in_the_bucket_that_just_closed() {
        let (h, clock, w) = setup();
        h.record_ns(10 * US);
        h.record_ns(20 * US);
        clock.advance(SEC); // close bucket 0
        let closed = w.rotate();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].tier, Tier::Seconds);
        assert_eq!(closed[0].epoch, 0);
        assert_eq!(closed[0].delta.count(), 2);
        // Idempotent at the same instant.
        assert!(w.rotate().is_empty());
        let view = w.window(Tier::Seconds, 60);
        assert_eq!(view.merged.count(), 2);
        assert_eq!(view.now_epoch, 1);
        assert_eq!(view.buckets, vec![(0, closed[0].delta)]);
    }

    #[test]
    fn stale_buckets_age_out_of_the_window() {
        let (h, clock, w) = setup();
        h.record_ns(5 * US);
        clock.advance(SEC);
        w.rotate();
        // 2 idle seconds later the sample is outside a 2-bucket window
        // but still inside a 60-bucket one.
        clock.advance(2 * SEC);
        assert_eq!(w.window(Tier::Seconds, 2).merged.count(), 0);
        assert_eq!(w.window(Tier::Seconds, 60).merged.count(), 1);
    }

    #[test]
    fn ring_wrap_discards_only_the_overwritten_epochs() {
        let (h, clock, w) = setup();
        h.record_ns(US);
        clock.advance(SEC);
        w.rotate(); // epoch 0 closed with 1 sample
        // Jump past the ring: epoch 0's slot is reused by epoch 60+.
        clock.set(61 * SEC);
        h.record_ns(2 * US);
        clock.advance(SEC);
        let closed = w.rotate();
        // The second sample closes into seconds epoch 61 (the bucket that
        // just passed); the first is long out of the seconds window.
        let seconds: Vec<_> = closed.iter().filter(|c| c.tier == Tier::Seconds).collect();
        assert_eq!(seconds.len(), 1);
        assert_eq!(seconds[0].epoch, 61);
        let view = w.window(Tier::Seconds, 60);
        assert_eq!(view.merged.count(), 1);
        assert_eq!(view.buckets.len(), 1);
        assert_eq!(view.buckets[0].0, 61);
    }

    #[test]
    fn minute_tier_promotes_seconds() {
        let (h, clock, w) = setup();
        // One sample per second for 60 seconds.
        for _ in 0..60 {
            h.record_ns(100 * US);
            clock.advance(SEC);
            w.rotate();
        }
        // All 60 fall inside minute bucket 0, which closed at t=60s.
        let minutes = w.window(Tier::Minutes, 60);
        assert_eq!(minutes.merged.count(), 60);
        assert_eq!(minutes.buckets.len(), 1);
        assert_eq!(minutes.buckets[0].0, 0);
        // The seconds view still resolves them per-bucket.
        let seconds = w.window(Tier::Seconds, 60);
        assert_eq!(seconds.merged.count(), 60);
        assert_eq!(seconds.buckets.len(), 60);
        assert_eq!(seconds.merged, minutes.merged);
    }

    #[test]
    fn rotation_is_o1_across_long_idle_gaps() {
        let (h, clock, w) = setup();
        h.record_ns(US);
        // An hour of idle must not require an hour of bucket closes.
        clock.set(3_600 * SEC);
        let closed = w.rotate();
        // The sample closes into seconds epoch 3599 and minute epoch 59 —
        // the most recently passed buckets at rotation time.
        assert_eq!(closed.len(), 2);
        assert_eq!(w.window(Tier::Seconds, 60).merged.count(), 1);
        assert_eq!(w.window(Tier::Minutes, 60).merged.count(), 1);
        // One more idle hour ages both out.
        clock.set(7_200 * SEC);
        assert_eq!(w.window(Tier::Seconds, 60).merged.count(), 0);
        assert_eq!(w.window(Tier::Minutes, 60).merged.count(), 0);
    }

    #[test]
    fn restore_replays_persisted_buckets() {
        let (h, clock, w) = setup();
        h.record_ns(40 * US);
        clock.advance(SEC);
        let closed = w.rotate();
        // "Restart": fresh histogram + windows on a clock at the same time.
        let h2 = Arc::new(Histogram::new());
        let clock2 = Arc::new(ManualClock::at(clock.now_nanos()));
        let w2 = WindowedHistogram::new(Arc::clone(&h2), clock2.clone() as Arc<dyn Clock>);
        for bucket in closed {
            w2.restore(bucket);
        }
        let (a, b) = (w.window(Tier::Seconds, 60), w2.window(Tier::Seconds, 60));
        assert_eq!(a.merged, b.merged);
        assert_eq!(a.buckets, b.buckets);
        // New traffic after the restore keeps accumulating.
        h2.record_ns(10 * US);
        clock2.advance(SEC);
        w2.rotate();
        assert_eq!(w2.window(Tier::Seconds, 60).merged.count(), 2);

        // A restart whose clock re-starts at the origin still serves the
        // replayed history: views anchor at the restored open epoch, not
        // the (earlier) clock epoch, so the rendering is byte-identical
        // to the pre-restart one.
        let h3 = Arc::new(Histogram::new());
        let clock3 = Arc::new(ManualClock::at(0));
        let w3 = WindowedHistogram::new(Arc::clone(&h3), clock3 as Arc<dyn Clock>);
        w3.restore(ClosedBucket {
            tier: Tier::Seconds,
            epoch: 0,
            delta: a.buckets[0].1,
        });
        let c = w3.window(Tier::Seconds, 60);
        assert_eq!(c.now_epoch, a.now_epoch);
        assert_eq!(c.merged, a.merged);
        assert_eq!(c.buckets, a.buckets);
    }

    #[test]
    fn windowed_counter_sums_recent_increments() {
        let c = Arc::new(Counter::new());
        let clock = Arc::new(ManualClock::new());
        let w = WindowedCounter::new(Arc::clone(&c), clock.clone() as Arc<dyn Clock>);
        c.add(3);
        clock.advance(SEC);
        w.rotate();
        c.add(4);
        clock.advance(SEC);
        assert_eq!(w.sum(60), 7);
        assert_eq!(w.sum(1), 4);
        clock.advance(5 * SEC);
        assert_eq!(w.sum(2), 0);
        assert_eq!(w.sum(60), 7);
    }

    #[test]
    fn slo_parse_accepts_the_flag_grammar() {
        let rule = SloRule::parse("p99<5000/60").expect("valid");
        assert_eq!(rule.metric, "query");
        assert!((rule.p - 0.99).abs() < 1e-9);
        assert_eq!(rule.threshold_us, 5_000);
        assert_eq!(rule.window, 60);
        assert_eq!(rule.short_window(), 10);
        let rule = SloRule::parse("resolve:p999<20000/30").expect("valid");
        assert_eq!(rule.metric, "resolve");
        assert!((rule.p - 0.999).abs() < 1e-9);
        assert_eq!(rule.short_window(), 5);
        for bad in [
            "",
            "p99",
            "p99<x/60",
            "p99<0/60",
            "p99<5/0",
            "p99<5/61",
            "q99<5/60",
            "Query:p99<5/60",
            "p0<5/60",
        ] {
            assert!(SloRule::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn slo_states_follow_the_burn_rate() {
        let rule = SloRule { metric: "query".into(), p: 0.99, threshold_us: 1_000, window: 60 };
        let hot = Histogram::new();
        for _ in 0..10 {
            hot.record_ns(5_000 * US); // all well over 1ms
        }
        let hot = hot.snapshot();
        let status = rule.evaluate(&hot, &hot);
        assert_eq!(status.state, SloState::Firing);
        // 100% over threshold against a 1% budget: burn = 10000%.
        assert_eq!(status.burn_long_pct, 10_000);
        // Spike aged out of the short window: warning, not firing.
        let empty = HistogramSnapshot::default();
        assert_eq!(rule.evaluate(&hot, &empty).state, SloState::Warning);
        assert_eq!(rule.evaluate(&empty, &hot).state, SloState::Warning);
        // Both windows drained: ok.
        assert_eq!(rule.evaluate(&empty, &empty).state, SloState::Ok);
        // Fast traffic never burns.
        let cool = Histogram::new();
        for _ in 0..1_000 {
            cool.record_ns(10 * US);
        }
        let cool = cool.snapshot();
        assert_eq!(rule.evaluate(&cool, &cool).state, SloState::Ok);
    }

    #[test]
    fn over_threshold_is_conservative_at_bucket_boundaries() {
        let rule = SloRule { metric: "query".into(), p: 0.9, threshold_us: 100, window: 10 };
        let h = Histogram::new();
        h.record_ns(90 * US); // [64,128): straddles 100µs -> counts as under
        h.record_ns(130 * US); // [128,256): floor 128 >= 100 -> over
        h.record_ns(10 * US); // clearly under
        assert_eq!(rule.over_threshold(&h.snapshot()), 1);
    }
}
