//! Counters and fixed-bucket latency histograms.
//!
//! The histogram uses power-of-two microsecond buckets: bucket 0 holds
//! samples below 1µs and bucket `i` holds samples in `[2^(i-1), 2^i)` µs,
//! with the last bucket absorbing everything slower. Percentiles are
//! reported as the upper bound of the bucket the requested rank falls in
//! — coarse (within 2×) but lock-free, constant-memory, and safe to share
//! across server workers. Windowed rollups ([`crate::window`]) instead use
//! [`HistogramSnapshot::percentile_interp_us`], which interpolates inside
//! the rank bucket and clamps to the observed min/max so a window's p50
//! can never fall below its smallest sample.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. The final boundary is `2^26` µs ≈ 67 s;
/// anything slower lands in the overflow bucket.
pub const BUCKET_COUNT: usize = 28;

/// A shared monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Exact worst sample (not bucket-rounded) — the number you grep
    /// for after an incident.
    pub max_us: u64,
    /// Best sample (0 when empty). Exact for live snapshots; for a
    /// [`HistogramSnapshot::sub`] delta it is the tightest provable
    /// lower bound on the window's smallest sample.
    pub min_us: u64,
}

/// An immutable copy of a [`Histogram`]'s bucket counts and sum, taken in
/// one pass. All derived statistics (count, mean, percentiles) computed
/// from the same snapshot describe the same instant — unlike calling
/// [`Histogram::count`] and [`Histogram::percentile_us`] back to back,
/// which can interleave with concurrent `record_ns` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; BUCKET_COUNT],
    pub sum_ns: u64,
    /// Largest single sample recorded, exact (0 when empty).
    pub max_ns: u64,
    /// Smallest single sample recorded (0 when empty). For deltas
    /// produced by [`HistogramSnapshot::sub`] this is a lower bound:
    /// the later snapshot's lifetime minimum raised to the floor of the
    /// window's lowest non-empty bucket.
    pub min_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: [0; BUCKET_COUNT], sum_ns: 0, max_ns: 0, min_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        self.sum_ns / n / 1_000
    }

    /// The rank (1-based) the `q`-quantile falls on, or `None` when empty.
    fn rank(&self, q: f64) -> Option<(u64, u64)> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        Some((target, total))
    }

    /// The `q`-quantile as the upper bound of the bucket holding that
    /// rank, in microseconds. 0 when empty.
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> u64 {
        let Some((target, _)) = self.rank(q) else {
            return 0;
        };
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Histogram::bucket_bound_us(i);
            }
        }
        Histogram::bucket_bound_us(BUCKET_COUNT - 1)
    }

    /// The `q`-quantile interpolated linearly inside the rank bucket and
    /// clamped to the snapshot's observed `[min, max]`, in microseconds.
    ///
    /// Naive in-bucket interpolation walks down from the bucket floor as
    /// the rank drops — with two samples of 30µs and 31µs in the
    /// `[16,32)`µs bucket the raw p50 interpolates to 24µs, *below* the
    /// smallest sample ever observed. Clamping to `min_us` pins the
    /// reported quantile inside the envelope the snapshot actually saw,
    /// which is what makes windowed deltas trustworthy on dashboards.
    #[must_use]
    pub fn percentile_interp_us(&self, q: f64) -> u64 {
        let Some((target, _)) = self.rank(q) else {
            return 0;
        };
        let min_us = self.min_ns / 1_000;
        let max_us = self.max_ns / 1_000;
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let rank_in_bucket = target - cumulative; // 1..=n
                let lo = Histogram::bucket_floor_us(i);
                let hi = Histogram::bucket_bound_us(i);
                let raw = lo + ((hi - lo) * rank_in_bucket).div_ceil(n);
                return raw.clamp(min_us, max_us.max(min_us));
            }
            cumulative += n;
        }
        max_us.max(min_us)
    }

    /// Checked snapshot subtraction: the samples recorded between
    /// `earlier` and `self` (both taken from the same growing histogram).
    ///
    /// Returns `None` when `self` is not a superset of `earlier` (any
    /// bucket count or the sum would go negative) — the caller's snapshots
    /// are from different histograms or were taken out of order. The
    /// delta's `max_ns` carries the later lifetime max (an upper bound for
    /// the window); `min_ns` is the later lifetime min raised to the floor
    /// of the window's lowest non-empty bucket — the tightest lower bound
    /// derivable from two cumulative snapshots.
    #[must_use]
    pub fn sub(&self, earlier: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        let mut counts = [0u64; BUCKET_COUNT];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].checked_sub(earlier.counts[i])?;
        }
        let sum_ns = self.sum_ns.checked_sub(earlier.sum_ns)?;
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Some(HistogramSnapshot::default());
        }
        let lowest = counts.iter().position(|&n| n > 0).unwrap_or(0);
        let floor_ns = Histogram::bucket_floor_us(lowest).saturating_mul(1_000);
        Some(HistogramSnapshot {
            counts,
            sum_ns,
            max_ns: self.max_ns,
            min_ns: self.min_ns.max(floor_ns),
        })
    }

    /// Pure snapshot merge: the concatenation of both sample streams.
    /// Inverse of [`HistogramSnapshot::sub`] — `b.sub(a).merge(a) == b`
    /// whenever both snapshots came from the same growing histogram
    /// (pinned by a property test).
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKET_COUNT];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_add(other.counts[i]);
        }
        let min_ns = match (self.count() > 0, other.count() > 0) {
            (true, true) => self.min_ns.min(other.min_ns),
            (true, false) => self.min_ns,
            (false, true) => other.min_ns,
            (false, false) => 0,
        };
        HistogramSnapshot {
            counts,
            sum_ns: self.sum_ns.saturating_add(other.sum_ns),
            max_ns: self.max_ns.max(other.max_ns),
            min_ns,
        }
    }

    /// Count / mean / p50 / p95 / p99 / max / min, all from this one
    /// snapshot, with bucket-upper-bound percentiles.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
            max_us: self.max_ns / 1_000,
            min_us: self.min_ns / 1_000,
        }
    }

    /// Like [`HistogramSnapshot::summary`] but with interpolated, min/max
    /// clamped percentiles — the flavor `HISTORY` windows report.
    #[must_use]
    pub fn summary_interp(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.percentile_interp_us(0.50),
            p95_us: self.percentile_interp_us(0.95),
            p99_us: self.percentile_interp_us(0.99),
            max_us: self.max_ns / 1_000,
            min_us: self.min_ns / 1_000,
        }
    }
}

/// A lock-free fixed-bucket latency histogram (nanosecond samples,
/// microsecond reporting).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKET_COUNT],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// `u64::MAX` until the first sample, so `fetch_min` needs no branch.
    min_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// The bucket a nanosecond sample falls into.
    #[must_use]
    pub fn bucket_index(nanos: u64) -> usize {
        let micros = nanos / 1_000;
        if micros == 0 {
            return 0;
        }
        let bits = 64 - micros.leading_zeros() as usize;
        bits.min(BUCKET_COUNT - 1)
    }

    /// Upper bound of bucket `i` in microseconds (the value percentiles
    /// report). The overflow bucket reports its lower bound.
    #[must_use]
    pub fn bucket_bound_us(i: usize) -> u64 {
        1u64 << i.min(BUCKET_COUNT - 1)
    }

    /// Lower bound of bucket `i` in microseconds (0 for the sub-µs
    /// bucket).
    #[must_use]
    pub fn bucket_floor_us(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i.min(BUCKET_COUNT - 1) - 1)
        }
    }

    /// Record one latency sample.
    pub fn record_ns(&self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
        self.min_ns.fetch_min(nanos, Ordering::Relaxed);
    }

    /// Copy the bucket counts and sum in one pass. Concurrent `record_ns`
    /// calls may land between bucket loads (the histogram is lock-free by
    /// design), but every statistic derived from the returned snapshot is
    /// internally consistent.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw_min = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            min_ns: if raw_min == u64::MAX { 0 } else { raw_min },
        }
    }

    /// Fold another histogram's samples into this one, bucket by bucket.
    ///
    /// Because both histograms share the same fixed bucket boundaries,
    /// merging is exact: the merged quantiles equal the quantiles of the
    /// concatenated sample stream (pinned by a property test). This lets
    /// per-connection histograms be aggregated into a registry-owned one
    /// without any locking on the recording hot path.
    pub fn merge(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, &n) in snap.counts.iter().enumerate() {
            if n > 0 {
                self.counts[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if snap.sum_ns > 0 {
            self.sum_ns.fetch_add(snap.sum_ns, Ordering::Relaxed);
        }
        // max of maxes == max of the concatenated stream, so the merge
        // property below holds for max_us too; same for min of mins
        // (empty histograms are neutral: their normalized 0 min must not
        // poison the merged minimum).
        self.max_ns.fetch_max(snap.max_ns, Ordering::Relaxed);
        if snap.count() > 0 {
            self.min_ns.fetch_min(snap.min_ns, Ordering::Relaxed);
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Mean latency in microseconds (0 before the first sample).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.snapshot().mean_us()
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket holding that rank, in microseconds. 0 when empty.
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> u64 {
        self.snapshot().percentile_us(q)
    }

    /// Count / mean / p50 / p95 / p99 in one snapshot.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        self.snapshot().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000; // one microsecond in nanoseconds

    #[test]
    fn bucket_boundaries_are_powers_of_two_micros() {
        // Below 1µs: bucket 0.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(999), 0);
        // [1µs, 2µs) -> bucket 1, bound 2µs.
        assert_eq!(Histogram::bucket_index(US), 1);
        assert_eq!(Histogram::bucket_index(2 * US - 1), 1);
        // [2µs, 4µs) -> bucket 2.
        assert_eq!(Histogram::bucket_index(2 * US), 2);
        // 1ms = 1000µs falls in [512, 1024) -> bucket 10.
        assert_eq!(Histogram::bucket_index(1_000_000), 10);
        assert_eq!(Histogram::bucket_bound_us(10), 1_024);
        // Overflow clamps to the last bucket.
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
        // Floors are half the bound except for the sub-µs bucket.
        assert_eq!(Histogram::bucket_floor_us(0), 0);
        assert_eq!(Histogram::bucket_floor_us(1), 1);
        assert_eq!(Histogram::bucket_floor_us(10), 512);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.percentile_us(0.5), 0);
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.summary(), LatencySummary::default());
        assert_eq!(h.snapshot().min_ns, 0);
    }

    #[test]
    fn single_sample_sets_every_percentile() {
        let h = Histogram::new();
        h.record_ns(3 * US); // bucket 2, bound 4µs
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 4);
        assert_eq!(s.p95_us, 4);
        assert_eq!(s.p99_us, 4);
        assert_eq!(s.mean_us, 3);
        // Max and min are exact, not bucket-rounded.
        assert_eq!(s.max_us, 3);
        assert_eq!(s.min_us, 3);
    }

    #[test]
    fn max_tracks_the_exact_worst_sample() {
        let h = Histogram::new();
        assert_eq!(h.summary().max_us, 0);
        for &ns in &[100 * US, 800 * US, 200 * US, 400 * US] {
            h.record_ns(ns);
        }
        assert_eq!(h.summary().max_us, 800);
        assert_eq!(h.snapshot().max_ns, 800 * US);
        // Merging takes the max of maxes.
        let other = Histogram::new();
        other.record_ns(50 * US);
        h.merge(&other);
        assert_eq!(h.summary().max_us, 800);
        other.record_ns(9_000 * US);
        h.merge(&other);
        assert_eq!(h.summary().max_us, 9_000);
    }

    #[test]
    fn min_tracks_the_exact_best_sample() {
        let h = Histogram::new();
        for &ns in &[100 * US, 30 * US, 400 * US] {
            h.record_ns(ns);
        }
        assert_eq!(h.summary().min_us, 30);
        // Merging an empty histogram must not reset the minimum.
        h.merge(&Histogram::new());
        assert_eq!(h.summary().min_us, 30);
        let faster = Histogram::new();
        faster.record_ns(7 * US);
        h.merge(&faster);
        assert_eq!(h.summary().min_us, 7);
    }

    #[test]
    fn skewed_stream_separates_p50_from_p99() {
        let h = Histogram::new();
        // 90 fast samples at ~10µs, 10 slow at ~1s.
        for _ in 0..90 {
            h.record_ns(10 * US);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000_000);
        }
        assert_eq!(h.count(), 100);
        // p50 rank 50 -> fast bucket [8,16)µs, bound 16µs.
        assert_eq!(h.percentile_us(0.50), 16);
        // p99 rank 99 -> slow bucket; 1s = 976_562µs in [2^19, 2^20)µs.
        assert_eq!(h.percentile_us(0.99), 1 << 20);
        // p90 rank 90 still lands in the fast bucket.
        assert_eq!(h.percentile_us(0.90), 16);
    }

    #[test]
    fn percentile_clamps_degenerate_quantiles() {
        let h = Histogram::new();
        h.record_ns(US);
        h.record_ns(100 * US);
        // q=0 clamps to the first sample's bucket, q=1 to the last.
        assert_eq!(h.percentile_us(0.0), 2);
        assert_eq!(h.percentile_us(1.0), 128);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for &ns in &[500, 3 * US, 90 * US, 2_000_000] {
            a.record_ns(ns);
            all.record_ns(ns);
        }
        for &ns in &[7 * US, 7 * US, 1_000_000_000] {
            b.record_ns(ns);
            all.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn merge_into_empty_copies_everything() {
        let src = Histogram::new();
        src.record_ns(10 * US);
        let dst = Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.snapshot(), src.snapshot());
        // Merging an empty histogram changes nothing.
        dst.merge(&Histogram::new());
        assert_eq!(dst.snapshot(), src.snapshot());
    }

    #[test]
    fn snapshot_statistics_match_live_statistics() {
        let h = Histogram::new();
        for i in 0..100u64 {
            h.record_ns(i * US);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.mean_us(), h.mean_us());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.percentile_us(q), h.percentile_us(q));
        }
        assert_eq!(snap.summary(), h.summary());
        assert_eq!(HistogramSnapshot::default().summary(), LatencySummary::default());
    }

    #[test]
    fn sub_recovers_the_window_between_two_snapshots() {
        let h = Histogram::new();
        h.record_ns(10 * US);
        h.record_ns(20 * US);
        let earlier = h.snapshot();
        h.record_ns(100 * US);
        h.record_ns(200 * US);
        let later = h.snapshot();
        let delta = later.sub(&earlier).expect("later is a superset");
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum_ns, 300 * US);
        // The window's min bound: lifetime min (10µs) raised to the floor
        // of the lowest delta bucket ([64,128)µs -> 64µs).
        assert_eq!(delta.min_ns, 64 * US);
        assert_eq!(delta.max_ns, 200 * US);
    }

    #[test]
    fn sub_of_unrelated_snapshots_is_none_not_garbage() {
        let a = Histogram::new();
        a.record_ns(10 * US);
        let b = Histogram::new();
        b.record_ns(900 * US);
        // b's snapshot is not a superset of a's: some bucket underflows.
        assert_eq!(b.snapshot().sub(&a.snapshot()), None);
        // Equal snapshots subtract to the empty snapshot.
        let same = a.snapshot();
        assert_eq!(same.sub(&same), Some(HistogramSnapshot::default()));
    }

    #[test]
    fn interpolated_p50_never_undershoots_the_window_minimum() {
        // Regression: two samples at 30µs and 31µs share the [16,32)µs
        // bucket. Rank-1 interpolation yields 16 + 16*1/2 = 24µs — below
        // every sample in the window. The clamp pins p50 to the observed
        // minimum instead.
        let h = Histogram::new();
        h.record_ns(30 * US);
        h.record_ns(31 * US);
        let delta = h.snapshot().sub(&HistogramSnapshot::default()).expect("superset");
        assert_eq!(delta.min_ns, 30 * US);
        assert_eq!(delta.percentile_interp_us(0.50), 30);
        // p100 interpolates to the bucket bound (32) but clamps to the
        // exact max.
        assert_eq!(delta.percentile_interp_us(1.0), 31);
        let s = delta.summary_interp();
        assert_eq!((s.p50_us, s.min_us, s.max_us), (30, 30, 31));
        // Unclamped ranks still interpolate inside the bucket: with four
        // samples spread across [16,32), rank 1 of 4 sits at 20µs...
        let spread = Histogram::new();
        for &us in &[16, 20, 25, 31] {
            spread.record_ns(us * US);
        }
        // ...16 + ceil(16*1/4) = 20, within [min=16, max=31].
        assert_eq!(spread.snapshot().percentile_interp_us(0.25), 20);
    }

    #[test]
    fn snapshot_merge_is_subs_inverse() {
        let h = Histogram::new();
        h.record_ns(5 * US);
        let a = h.snapshot();
        h.record_ns(300 * US);
        h.record_ns(2 * US);
        let b = h.snapshot();
        let delta = b.sub(&a).expect("superset");
        assert_eq!(delta.merge(&a), b);
        assert_eq!(a.merge(&delta), b);
        // Merging the empty snapshot is the identity.
        assert_eq!(b.merge(&HistogramSnapshot::default()), b);
        assert_eq!(HistogramSnapshot::default().merge(&b), b);
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
