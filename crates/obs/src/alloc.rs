//! Allocation accounting: a counting [`GlobalAlloc`] wrapper over the
//! system allocator.
//!
//! Installing it (the `global-alloc` crate feature, which `yv-cli`
//! forwards as its default-on `alloc-metrics` feature) makes every
//! allocation in the process bump a handful of relaxed atomics, from
//! which [`alloc_stats`] derives byte totals, live bytes, and a
//! high-water mark. Library users of `yv-obs` are unaffected: without the
//! feature no `#[global_allocator]` is declared and [`alloc_stats`]
//! reports `enabled: false` with all-zero readings.
//!
//! Caveats (also in DESIGN.md §11): readings are process-wide, cover
//! every thread, and count requested layout sizes, not allocator-internal
//! overhead; the high-water mark is monotone per process unless reset via
//! [`reset_peak`], which batch drivers call between phases to attribute
//! peaks. The yv-audit A1 rule keeps `#[global_allocator]` out of every
//! other crate so these counters can never be silently bypassed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The relaxed-atomic counter set behind the accounting. One static
/// instance backs the installed allocator; tests exercise private
/// instances so their assertions cannot race with real allocations.
#[derive(Debug, Default)]
struct AllocCounters {
    alloc_bytes: AtomicU64,
    dealloc_bytes: AtomicU64,
    alloc_calls: AtomicU64,
    dealloc_calls: AtomicU64,
    peak_bytes: AtomicU64,
}

impl AllocCounters {
    const fn new() -> AllocCounters {
        AllocCounters {
            alloc_bytes: AtomicU64::new(0),
            dealloc_bytes: AtomicU64::new(0),
            alloc_calls: AtomicU64::new(0),
            dealloc_calls: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    fn account_alloc(&self, bytes: u64) {
        self.alloc_calls.fetch_add(1, Ordering::Relaxed);
        let allocated = self.alloc_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let live = allocated.saturating_sub(self.dealloc_bytes.load(Ordering::Relaxed));
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    fn account_dealloc(&self, bytes: u64) {
        self.dealloc_calls.fetch_add(1, Ordering::Relaxed);
        self.dealloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn stats(&self) -> AllocStats {
        let alloc_bytes = self.alloc_bytes.load(Ordering::Relaxed);
        let dealloc_bytes = self.dealloc_bytes.load(Ordering::Relaxed);
        let alloc_calls = self.alloc_calls.load(Ordering::Relaxed);
        AllocStats {
            enabled: alloc_calls > 0,
            alloc_bytes,
            dealloc_bytes,
            alloc_calls,
            dealloc_calls: self.dealloc_calls.load(Ordering::Relaxed),
            live_bytes: alloc_bytes.saturating_sub(dealloc_bytes),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset_peak(&self) {
        let live = self
            .alloc_bytes
            .load(Ordering::Relaxed)
            .saturating_sub(self.dealloc_bytes.load(Ordering::Relaxed));
        self.peak_bytes.store(live, Ordering::Relaxed);
    }
}

static COUNTERS: AllocCounters = AllocCounters::new();

/// Point-in-time allocator readings (all zero until the counting
/// allocator is installed and serves its first allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// True once the counting allocator has served at least one
    /// allocation — i.e. it is installed as the global allocator.
    pub enabled: bool,
    /// Total bytes ever allocated.
    pub alloc_bytes: u64,
    /// Total bytes ever deallocated.
    pub dealloc_bytes: u64,
    /// Number of allocation calls.
    pub alloc_calls: u64,
    /// Number of deallocation calls.
    pub dealloc_calls: u64,
    /// Bytes currently live (`alloc_bytes - dealloc_bytes`, saturating).
    pub live_bytes: u64,
    /// High-water mark of live bytes since process start (or the last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
}

/// Read the process-wide allocator counters.
#[must_use]
pub fn alloc_stats() -> AllocStats {
    COUNTERS.stats()
}

/// Reset the high-water mark to the current live-byte count, so a
/// subsequent [`alloc_stats`] reports the peak of one phase rather than
/// the whole process lifetime.
pub fn reset_peak() {
    COUNTERS.reset_peak();
}

/// A counting global allocator delegating to [`System`].
///
/// Declared as the `#[global_allocator]` by this crate's `global-alloc`
/// feature; binaries can equally install it themselves. Accounting is a
/// few relaxed atomic adds per call — negligible next to the allocation
/// itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`, which upholds the
// GlobalAlloc contract; the added atomic accounting does not allocate and
// cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            COUNTERS.account_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            COUNTERS.account_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        COUNTERS.account_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            COUNTERS.account_dealloc(layout.size() as u64);
            COUNTERS.account_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// The feature-gated installation: with `global-alloc` on, every crate in
/// the build (tests included) allocates through the counting wrapper.
#[cfg(feature = "global-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_totals_live_and_peak() {
        let c = AllocCounters::new();
        c.account_alloc(1_000);
        c.account_alloc(500);
        c.account_dealloc(400);
        let s = c.stats();
        assert!(s.enabled);
        assert_eq!(s.alloc_bytes, 1_500);
        assert_eq!(s.dealloc_bytes, 400);
        assert_eq!(s.alloc_calls, 2);
        assert_eq!(s.dealloc_calls, 1);
        assert_eq!(s.live_bytes, 1_100);
        assert_eq!(s.peak_bytes, 1_500, "peak observed before the dealloc");
    }

    #[test]
    fn fresh_counters_report_disabled_zeroes() {
        assert_eq!(AllocCounters::new().stats(), AllocStats::default());
    }

    #[test]
    fn reset_peak_drops_to_live() {
        let c = AllocCounters::new();
        c.account_alloc(10_000);
        c.account_dealloc(9_000);
        assert_eq!(c.stats().peak_bytes, 10_000);
        c.reset_peak();
        assert_eq!(c.stats().peak_bytes, 1_000);
        c.account_alloc(5_000);
        assert_eq!(c.stats().peak_bytes, 6_000);
    }

    #[cfg(feature = "global-alloc")]
    #[test]
    fn installed_allocator_observes_real_allocations() {
        let before = alloc_stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = alloc_stats();
        drop(v);
        assert!(after.enabled);
        assert!(after.alloc_bytes >= before.alloc_bytes + (1 << 16));
        assert!(after.peak_bytes > 0);
    }
}
