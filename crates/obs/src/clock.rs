//! Clock injection: the single place in the workspace that is allowed to
//! read the wall clock.
//!
//! The yv-audit S1 rule forbids `Instant::now` / `SystemTime::now` in
//! every other crate (see `crates/audit/src/profile.rs`), so deterministic
//! pipeline code can only obtain time through a [`Clock`] — either the
//! real [`MonotonicClock`] or a test-controlled [`ManualClock`]. That
//! makes "timing never influences scores or cluster output" true by
//! construction: code that wants a timestamp has to take a clock as an
//! argument, which is visible at every call site.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond counter since an arbitrary fixed origin.
///
/// `Send + Sync` so recorders and server metrics can share one clock
/// across worker threads.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The real clock: origin is the moment of construction.
///
/// This is the only sanctioned `Instant::now` call site in the workspace.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    #[must_use]
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: std::time::Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // A u64 of nanoseconds lasts ~584 years from the origin; saturate
        // rather than panic if something pathological happens.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock advanced explicitly by tests.
///
/// Interior mutability (an atomic) lets the same handle be read by the
/// recorder under test and advanced by the test body.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    #[must_use]
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A manual clock starting at an explicit nanosecond value.
    #[must_use]
    pub fn at(nanos: u64) -> ManualClock {
        ManualClock { nanos: AtomicU64::new(nanos) }
    }

    /// Move the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Set the clock to an absolute nanosecond value.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(1_500);
        assert_eq!(clock.now_nanos(), 1_500);
        clock.advance(500);
        assert_eq!(clock.now_nanos(), 2_000);
        clock.set(42);
        assert_eq!(clock.now_nanos(), 42);
        assert_eq!(ManualClock::at(7).now_nanos(), 7);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
