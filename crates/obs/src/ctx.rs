//! Request-scoped tracing: per-request span capture with a deterministic
//! trace id.
//!
//! A [`TraceCtx`] rides one request from accept to reply. It is owned by
//! exactly one worker thread for its whole life, so unlike [`Recorder`]
//! (which shares a span vector across threads behind a mutex) it needs no
//! locking at all: `enter`/`exit`/`arg` are plain writes into
//! fixed-capacity arrays. When the request finishes, the context folds
//! into a [`RequestTrace`] — a `Copy`, heap-free value sized for the
//! seqlock slots of [`crate::ring::TraceRing`] — and is handed to the
//! capture ring.
//!
//! Trace ids come from a [`TraceIdGen`]: a seeded splitmix64 permutation
//! of an atomic counter. No wall clock, no OS randomness — the id
//! sequence for a given seed is fixed, so tests replay byte-identical
//! `TRACE` renderings (audit rule S1 stays intact).
//!
//! [`Recorder`]: crate::recorder::Recorder

use crate::clock::{Clock, ManualClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Spans a [`RequestTrace`] can hold. A request records one span per
/// protocol stage plus one per shard touched; overflow increments
/// [`RequestTrace::dropped_spans`] instead of allocating.
pub const MAX_TRACE_SPANS: usize = 24;

/// Key/value annotations per span (and per request root).
pub const MAX_SPAN_ARGS: usize = 4;

/// Sentinel meaning "no shard" in a span's shard slot.
const NO_SHARD: u32 = u32::MAX;

/// One stage of a request: a static name, tree depth, optional shard
/// index, absolute start (clock nanoseconds) and duration, plus up to
/// [`MAX_SPAN_ARGS`] integer annotations. Entirely `Copy` — names and
/// arg keys are `&'static str` — so whole traces move through the
/// seqlock ring by memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    pub name: &'static str,
    /// Nesting depth: 0 for protocol stages, 1 for per-shard children.
    pub depth: u8,
    shard: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    arg_count: u8,
}

impl TraceSpan {
    const EMPTY: TraceSpan = TraceSpan {
        name: "",
        depth: 0,
        shard: NO_SHARD,
        start_ns: 0,
        dur_ns: 0,
        args: [("", 0); MAX_SPAN_ARGS],
        arg_count: 0,
    };

    /// The shard this span worked on, if it names one.
    #[must_use]
    pub fn shard(&self) -> Option<u32> {
        if self.shard == NO_SHARD {
            None
        } else {
            Some(self.shard)
        }
    }

    /// The span's annotations, in insertion order.
    #[must_use]
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..usize::from(self.arg_count)]
    }

    fn push_arg(&mut self, key: &'static str, value: u64) {
        if usize::from(self.arg_count) < MAX_SPAN_ARGS {
            self.args[usize::from(self.arg_count)] = (key, value);
            self.arg_count += 1;
        }
    }
}

/// A completed request's trace: identity, outcome, and the span tree.
/// `Copy` and heap-free by construction so the capture ring can seqlock
/// it in and out of fixed slots (see [`crate::ring::TraceRing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's trace id (never 0; 0 means "untraced").
    pub id: u64,
    /// Server connection the request arrived on.
    pub conn: u64,
    /// Canonical command name (a static protocol string).
    pub command: &'static str,
    /// False when the request answered `ERR`.
    pub ok: bool,
    /// Clock reading at accept, nanoseconds. Span starts are absolute on
    /// the same clock; renderers subtract to show request-relative time.
    pub start_ns: u64,
    /// Accept-to-reply duration, nanoseconds.
    pub total_ns: u64,
    spans: [TraceSpan; MAX_TRACE_SPANS],
    span_count: u8,
    /// Spans discarded once the fixed capacity filled.
    pub dropped_spans: u16,
    args: [(&'static str, u64); MAX_SPAN_ARGS],
    arg_count: u8,
}

impl RequestTrace {
    /// A zeroed placeholder (id 0): what empty ring slots hold.
    #[must_use]
    pub const fn empty() -> RequestTrace {
        RequestTrace {
            id: 0,
            conn: 0,
            command: "",
            ok: true,
            start_ns: 0,
            total_ns: 0,
            spans: [TraceSpan::EMPTY; MAX_TRACE_SPANS],
            span_count: 0,
            dropped_spans: 0,
            args: [("", 0); MAX_SPAN_ARGS],
            arg_count: 0,
        }
    }

    /// The recorded spans, in start order.
    #[must_use]
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans[..usize::from(self.span_count)]
    }

    /// Request-level annotations (e.g. the argument digest).
    #[must_use]
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..usize::from(self.arg_count)]
    }
}

/// Seeded deterministic trace-id generator: splitmix64 over an atomic
/// counter. Ids are never 0 and, for a fixed seed, form a fixed
/// sequence — restarting a test server replays the same ids.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    counter: AtomicU64,
}

/// The splitmix64 finalizer: a bijective mix, so distinct counter values
/// never collide for one seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceIdGen {
    #[must_use]
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen { seed, counter: AtomicU64::new(0) }
    }

    /// The next trace id. Lock-free (one relaxed `fetch_add`).
    #[must_use]
    pub fn next_id(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // 0 is the "untraced" sentinel; remap the (at most one per seed)
        // counter value that lands there.
        if id == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            id
        }
    }
}

/// A per-request trace under construction. Single-owner (one worker
/// thread), so every operation is a plain array write — no atomics, no
/// locks, no allocation. Construct with [`TraceCtx::start`] at accept,
/// thread `&mut` through the stages, and [`TraceCtx::finish`] at reply.
///
/// A [`TraceCtx::disabled`] context makes every operation an early
/// return, so the traced code paths (`Store::query_traced`,
/// `Store::resolve_traced`) serve untraced callers at full speed.
#[derive(Debug)]
pub struct TraceCtx {
    clock: Arc<dyn Clock>,
    enabled: bool,
    trace: RequestTrace,
    /// Stack of indices into `trace.spans` for open spans;
    /// `u8::MAX` marks an open span that overflowed the array.
    open: [u8; MAX_TRACE_SPANS],
    open_count: u8,
}

impl TraceCtx {
    /// Begin tracing a request: stamps the accept time from `clock`.
    #[must_use]
    pub fn start(id: u64, conn: u64, clock: Arc<dyn Clock>) -> TraceCtx {
        let mut trace = RequestTrace::empty();
        trace.id = id;
        trace.conn = conn;
        trace.start_ns = clock.now_nanos();
        TraceCtx {
            clock,
            enabled: true,
            trace,
            open: [0; MAX_TRACE_SPANS],
            open_count: 0,
        }
    }

    /// A no-op context: every method returns immediately and
    /// [`TraceCtx::finish`] yields `None`. Costs one small allocation
    /// (the clock arc) and nothing per operation.
    #[must_use]
    pub fn disabled() -> TraceCtx {
        TraceCtx {
            clock: Arc::new(ManualClock::new()),
            enabled: false,
            trace: RequestTrace::empty(),
            open: [0; MAX_TRACE_SPANS],
            open_count: 0,
        }
    }

    /// The request's trace id (0 when disabled).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.trace.id
    }

    /// True when this context records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Name the command once parsing identified it.
    pub fn set_command(&mut self, command: &'static str) {
        self.trace.command = command;
    }

    /// Open a span. Depth is the number of currently open ancestors.
    pub fn enter(&mut self, name: &'static str) {
        self.enter_at(name, None);
    }

    /// Open a span annotated with the shard it works on.
    pub fn enter_shard(&mut self, name: &'static str, shard: u32) {
        self.enter_at(name, Some(shard));
    }

    fn enter_at(&mut self, name: &'static str, shard: Option<u32>) {
        if !self.enabled || usize::from(self.open_count) >= MAX_TRACE_SPANS {
            return;
        }
        let depth = self.open_count;
        let slot = if usize::from(self.trace.span_count) < MAX_TRACE_SPANS {
            let i = self.trace.span_count;
            self.trace.spans[usize::from(i)] = TraceSpan {
                name,
                depth,
                shard: shard.unwrap_or(NO_SHARD),
                start_ns: self.clock.now_nanos(),
                dur_ns: 0,
                args: [("", 0); MAX_SPAN_ARGS],
                arg_count: 0,
            };
            self.trace.span_count += 1;
            i
        } else {
            self.trace.dropped_spans = self.trace.dropped_spans.saturating_add(1);
            u8::MAX
        };
        self.open[usize::from(self.open_count)] = slot;
        self.open_count += 1;
    }

    /// Annotate the innermost open span. Silently capped at
    /// [`MAX_SPAN_ARGS`]; no-op when no span is open.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if !self.enabled || self.open_count == 0 {
            return;
        }
        let slot = self.open[usize::from(self.open_count - 1)];
        if slot != u8::MAX {
            self.trace.spans[usize::from(slot)].push_arg(key, value);
        }
    }

    /// Annotate the request itself (rendered on the `TRACE` status
    /// line). Name-derived values must be digested first — pass
    /// `fnv1a64(name)` — which the type enforces by taking only `u64`.
    pub fn annotate(&mut self, key: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        if usize::from(self.trace.arg_count) < MAX_SPAN_ARGS {
            self.trace.args[usize::from(self.trace.arg_count)] = (key, value);
            self.trace.arg_count += 1;
        }
    }

    /// Close the innermost open span, stamping its duration.
    pub fn exit(&mut self) {
        if !self.enabled || self.open_count == 0 {
            return;
        }
        self.open_count -= 1;
        let slot = self.open[usize::from(self.open_count)];
        if slot != u8::MAX {
            let span = &mut self.trace.spans[usize::from(slot)];
            span.dur_ns = self.clock.now_nanos().saturating_sub(span.start_ns);
        }
    }

    /// Seal the trace: closes any spans left open, stamps the total
    /// duration and outcome. Returns `None` for a disabled context.
    #[must_use]
    pub fn finish(mut self, ok: bool) -> Option<RequestTrace> {
        if !self.enabled {
            return None;
        }
        while self.open_count > 0 {
            self.exit();
        }
        self.trace.ok = ok;
        self.trace.total_ns = self.clock.now_nanos().saturating_sub(self.trace.start_ns);
        Some(self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_ctx() -> (TraceCtx, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let ctx = TraceCtx::start(0xabcd, 7, Arc::clone(&clock) as Arc<dyn Clock>);
        (ctx, clock)
    }

    #[test]
    fn id_sequence_is_deterministic_per_seed_and_never_zero() {
        let a = TraceIdGen::new(42);
        let b = TraceIdGen::new(42);
        let ids: Vec<u64> = (0..64).map(|_| a.next_id()).collect();
        let again: Vec<u64> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids, again);
        assert!(ids.iter().all(|&id| id != 0));
        // Distinct seeds diverge immediately.
        let c = TraceIdGen::new(43);
        assert_ne!(ids[0], c.next_id());
        // Ids within a seed are distinct (splitmix64 is bijective).
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn spans_nest_with_depth_shard_and_args() {
        let (mut ctx, clock) = manual_ctx();
        ctx.set_command("RESOLVE");
        ctx.annotate("name_digest", 0x1234);
        ctx.enter("shard_fanout");
        clock.advance(1_000);
        ctx.enter_shard("shard", 2);
        ctx.arg("cands", 5);
        clock.advance(2_000);
        ctx.exit();
        clock.advance(500);
        ctx.exit();
        clock.advance(100);
        let trace = ctx.finish(true).expect("enabled");
        assert_eq!(trace.id, 0xabcd);
        assert_eq!(trace.conn, 7);
        assert_eq!(trace.command, "RESOLVE");
        assert!(trace.ok);
        assert_eq!(trace.total_ns, 3_600);
        assert_eq!(trace.args(), &[("name_digest", 0x1234)]);
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "shard_fanout");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].shard(), None);
        assert_eq!(spans[0].dur_ns, 3_500);
        assert_eq!(spans[1].name, "shard");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].shard(), Some(2));
        assert_eq!(spans[1].start_ns, 1_000);
        assert_eq!(spans[1].dur_ns, 2_000);
        assert_eq!(spans[1].args(), &[("cands", 5)]);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let (mut ctx, clock) = manual_ctx();
        ctx.enter("reply");
        clock.advance(700);
        let trace = ctx.finish(false).expect("enabled");
        assert!(!trace.ok);
        assert_eq!(trace.spans()[0].dur_ns, 700);
    }

    #[test]
    fn span_overflow_counts_drops_and_keeps_exits_balanced() {
        let (mut ctx, clock) = manual_ctx();
        for _ in 0..MAX_TRACE_SPANS + 5 {
            ctx.enter("s");
            clock.advance(1);
        }
        for _ in 0..MAX_TRACE_SPANS + 5 {
            ctx.exit();
        }
        let trace = ctx.finish(true).expect("enabled");
        // Depth is capped at the open-stack size, so the deepest entries
        // never even open; everything that did open was recorded.
        assert_eq!(trace.spans().len(), MAX_TRACE_SPANS);
        assert_eq!(trace.dropped_spans, 0);
        // A wide (not deep) request overflows the span array instead.
        let (mut ctx, _clock) = manual_ctx();
        for _ in 0..MAX_TRACE_SPANS + 3 {
            ctx.enter("w");
            ctx.exit();
        }
        let trace = ctx.finish(true).expect("enabled");
        assert_eq!(trace.spans().len(), MAX_TRACE_SPANS);
        assert_eq!(trace.dropped_spans, 3);
    }

    #[test]
    fn disabled_context_records_nothing() {
        let mut ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.id(), 0);
        ctx.set_command("QUERY");
        ctx.enter("parse");
        ctx.arg("k", 1);
        ctx.annotate("digest", 2);
        ctx.exit();
        assert!(ctx.finish(true).is_none());
    }
}
