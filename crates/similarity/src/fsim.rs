//! The expert item-similarity function `fsim` of Eq. 1 and the expert item
//! weighting scheme (`Expert Weighting` condition, Section 6.5).
//!
//! ```text
//! fsim(i1, i2) = 0                          if type(i1) != type(i2)
//!              = jw(i1, i2)                 if type = Name
//!              = 1 - |i1 - i2| / 50         if type = Year
//!              = 1 - monthDiff(i1,i2) / 12  if type = Month
//!              = 1 - dayDiff(i1,i2) / 31    if type = Day
//!              = max(0, 1 - geoDist/100)    if type = Geo
//! ```
//!
//! Code-like items (gender, profession, non-city place parts) fall back to
//! exact equality. The paper found this hand-crafted function *detrimental*
//! when used as the MFIBlocks block score because it breaks the
//! set-monotonicity the algorithm relies on (Table 9) — we reproduce that
//! finding, so the function is here both as API and as the `ExpertSim`
//! experiment condition.

use crate::dates::{day_diff, month_diff};
use crate::geo::haversine_km;
use crate::jaro::jaro_winkler;
use yv_records::item::SimClass;
use yv_records::{Interner, ItemId, ItemType};

/// Expert item similarity (Eq. 1) between two interned items.
///
/// Items of different types score 0. Date items that fail to parse (cannot
/// happen for generator output, but guarded anyway) and city items without
/// registered coordinates fall back to exact-match comparison.
#[must_use]
pub fn item_similarity(interner: &Interner, i1: ItemId, i2: ItemId) -> f64 {
    let t1 = interner.item_type(i1);
    let t2 = interner.item_type(i2);
    if t1 != t2 {
        return 0.0;
    }
    if i1 == i2 {
        return 1.0;
    }
    let v1 = interner.value(i1);
    let v2 = interner.value(i2);
    match t1.sim_class() {
        SimClass::Name => jaro_winkler(v1, v2),
        SimClass::Code => 0.0, // distinct codes are simply different
        SimClass::Year => match (v1.parse::<i32>(), v2.parse::<i32>()) {
            (Ok(y1), Ok(y2)) => (1.0 - f64::from(y1.abs_diff(y2)) / 50.0).max(0.0),
            _ => 0.0,
        },
        SimClass::Month => match (v1.parse::<u8>(), v2.parse::<u8>()) {
            (Ok(m1), Ok(m2)) => 1.0 - f64::from(month_diff(m1, m2)) / 12.0,
            _ => 0.0,
        },
        SimClass::Day => match (v1.parse::<u8>(), v2.parse::<u8>()) {
            (Ok(d1), Ok(d2)) => 1.0 - f64::from(day_diff(d1, d2)) / 31.0,
            _ => 0.0,
        },
        SimClass::Geo => match (interner.geo(i1), interner.geo(i2)) {
            (Some(g1), Some(g2)) => (1.0 - haversine_km(g1, g2) / 100.0).max(0.0),
            _ => 0.0,
        },
    }
}

/// Expert-derived item-type weights for block scoring (the `Expert
/// Weighting` condition). Weights reflect Yad Vashem archivists' view of how
/// identifying each attribute is: names and birth dates identify a person;
/// gender and coarse place parts barely discriminate.
#[derive(Debug, Clone)]
pub struct ExpertWeights {
    weights: [f64; ItemType::COUNT],
}

impl Default for ExpertWeights {
    fn default() -> Self {
        let mut weights = [1.0; ItemType::COUNT];
        for ty in ItemType::all() {
            weights[ty.index()] = match ty {
                ItemType::FirstName | ItemType::LastName => 2.0,
                ItemType::MaidenName | ItemType::MothersMaiden => 1.8,
                ItemType::FatherName | ItemType::MotherFirstName | ItemType::SpouseName => 1.6,
                ItemType::BirthDay | ItemType::BirthMonth => 1.4,
                ItemType::BirthYear => 1.5,
                ItemType::Gender => 0.2,
                ItemType::Profession => 0.6,
                ItemType::Place(_, part) => match part {
                    yv_records::field::PlacePart::City => 1.2,
                    yv_records::field::PlacePart::County => 0.8,
                    yv_records::field::PlacePart::Region => 0.5,
                    yv_records::field::PlacePart::Country => 0.3,
                },
            };
        }
        ExpertWeights { weights }
    }
}

impl ExpertWeights {
    /// Uniform weights (the `Base` condition).
    #[must_use]
    pub fn uniform() -> Self {
        ExpertWeights { weights: [1.0; ItemType::COUNT] }
    }

    /// The weight of an item type.
    #[must_use]
    pub fn weight(&self, ty: ItemType) -> f64 {
        self.weights[ty.index()]
    }

    /// Override a single weight (for ablations and tests).
    pub fn set(&mut self, ty: ItemType, w: f64) {
        self.weights[ty.index()] = w;
    }
}

/// The weight an item contributes to a weighted block score.
#[must_use]
pub fn weighted_item_weight(interner: &Interner, weights: &ExpertWeights, item: ItemId) -> f64 {
    weights.weight(interner.item_type(item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::field::{PlacePart, PlaceType};
    use yv_records::GeoPoint;

    fn interner() -> Interner {
        Interner::new()
    }

    #[test]
    fn different_types_score_zero() {
        let mut it = interner();
        let f = it.intern(ItemType::FirstName, "guido");
        let l = it.intern(ItemType::LastName, "guido");
        assert!(item_similarity(&it, f, l).abs() < 1e-12);
    }

    #[test]
    fn identical_items_score_one() {
        let mut it = interner();
        let a = it.intern(ItemType::FirstName, "guido");
        assert!((item_similarity(&it, a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn names_use_jaro_winkler() {
        let mut it = interner();
        let a = it.intern(ItemType::FirstName, "bella");
        let b = it.intern(ItemType::FirstName, "della");
        let expected = jaro_winkler("bella", "della");
        assert!((item_similarity(&it, a, b) - expected).abs() < 1e-12);
    }

    #[test]
    fn years_normalize_by_50() {
        let mut it = interner();
        let a = it.intern(ItemType::BirthYear, "1920");
        let b = it.intern(ItemType::BirthYear, "1930");
        assert!((item_similarity(&it, a, b) - 0.8).abs() < 1e-12);
        let c = it.intern(ItemType::BirthYear, "1830");
        assert!(item_similarity(&it, a, c).abs() < 1e-12, "clamped at 0");
    }

    #[test]
    fn months_and_days_normalize() {
        let mut it = interner();
        let m1 = it.intern(ItemType::BirthMonth, "1");
        let m2 = it.intern(ItemType::BirthMonth, "12");
        assert!((item_similarity(&it, m1, m2) - (1.0 - 1.0 / 12.0)).abs() < 1e-12);
        let d1 = it.intern(ItemType::BirthDay, "2");
        let d2 = it.intern(ItemType::BirthDay, "18");
        assert!((item_similarity(&it, d1, d2) - (1.0 - 16.0 / 31.0)).abs() < 1e-12);
    }

    #[test]
    fn geo_items_use_distance() {
        let mut it = interner();
        let ty = ItemType::Place(PlaceType::Birth, PlacePart::City);
        let turin = it.intern(ty, "torino");
        let moncalieri = it.intern(ty, "moncalieri");
        it.register_geo(turin, GeoPoint::new(45.0703, 7.6869));
        it.register_geo(moncalieri, GeoPoint::new(44.9996, 7.6828));
        let sim = item_similarity(&it, turin, moncalieri);
        assert!(sim > 0.88 && sim < 0.95, "~8km apart: got {sim}");
        // Without coords, distinct cities score 0.
        let unknown = it.intern(ty, "atlantis");
        assert!(item_similarity(&it, turin, unknown).abs() < 1e-12);
    }

    #[test]
    fn code_items_are_exact_match() {
        let mut it = interner();
        let g0 = it.intern(ItemType::Gender, "0");
        let g1 = it.intern(ItemType::Gender, "1");
        assert!(item_similarity(&it, g0, g1).abs() < 1e-12);
    }

    #[test]
    fn expert_weights_favor_names_over_gender() {
        let w = ExpertWeights::default();
        assert!(w.weight(ItemType::FirstName) > w.weight(ItemType::Gender));
        assert!(
            w.weight(ItemType::Place(PlaceType::Birth, PlacePart::City))
                > w.weight(ItemType::Place(PlaceType::Birth, PlacePart::Country))
        );
        let u = ExpertWeights::uniform();
        for ty in ItemType::all() {
            assert!((u.weight(ty) - 1.0).abs() < 1e-12);
        }
    }
}
