//! Date-component distances.
//!
//! The paper's `BXDist` features measure per-component distance between
//! birth dates, "normalized by a maximal distance (31 for days, 12 for
//! months, 100 for years)". Months are compared cyclically (`monthDiff`),
//! matching the Eq. 1 formulation.

/// Absolute day-of-month difference.
#[must_use]
pub fn day_diff(a: u8, b: u8) -> u8 {
    a.abs_diff(b)
}

/// Cyclic month difference (December and January are 1 apart).
#[must_use]
pub fn month_diff(a: u8, b: u8) -> u8 {
    let d = a.abs_diff(b);
    d.min(12 - d.min(12))
}

/// Absolute year difference.
#[must_use]
pub fn year_diff(a: i32, b: i32) -> u32 {
    a.abs_diff(b)
}

/// Day distance normalized by the maximal distance of 31; clamped to
/// `[0, 1]`.
#[must_use]
pub fn day_dist_norm(a: u8, b: u8) -> f64 {
    (f64::from(day_diff(a, b)) / 31.0).min(1.0)
}

/// Cyclic month distance normalized by 12.
#[must_use]
pub fn month_dist_norm(a: u8, b: u8) -> f64 {
    (f64::from(month_diff(a, b)) / 12.0).min(1.0)
}

/// Year distance normalized by 100.
#[must_use]
pub fn year_dist_norm(a: i32, b: i32) -> f64 {
    (f64::from(year_diff(a, b)) / 100.0).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn day_distance() {
        assert_eq!(day_diff(2, 18), 16);
        assert!((day_dist_norm(1, 31) - 30.0 / 31.0).abs() < 1e-12);
        assert!((day_dist_norm(5, 5)).abs() < 1e-12);
    }

    #[test]
    fn month_distance_is_cyclic() {
        assert_eq!(month_diff(1, 12), 1);
        assert_eq!(month_diff(12, 1), 1);
        assert_eq!(month_diff(3, 9), 6);
        assert_eq!(month_diff(6, 6), 0);
    }

    #[test]
    fn year_distance() {
        assert_eq!(year_diff(1920, 1936), 16);
        assert!((year_dist_norm(1900, 2050) - 1.0).abs() < 1e-12, "clamped at 1");
    }

    proptest! {
        #[test]
        fn normalized_distances_in_unit_interval(
            d1 in 1u8..=31, d2 in 1u8..=31,
            m1 in 1u8..=12, m2 in 1u8..=12,
            y1 in 1850i32..1950, y2 in 1850i32..1950,
        ) {
            prop_assert!((0.0..=1.0).contains(&day_dist_norm(d1, d2)));
            prop_assert!((0.0..=1.0).contains(&month_dist_norm(m1, m2)));
            prop_assert!((0.0..=1.0).contains(&year_dist_norm(y1, y2)));
        }

        #[test]
        fn month_diff_at_most_6(m1 in 1u8..=12, m2 in 1u8..=12) {
            prop_assert!(month_diff(m1, m2) <= 6);
        }

        #[test]
        fn diffs_symmetric(m1 in 1u8..=12, m2 in 1u8..=12, y1 in 1850i32..1950, y2 in 1850i32..1950) {
            prop_assert_eq!(month_diff(m1, m2), month_diff(m2, m1));
            prop_assert_eq!(year_diff(y1, y2), year_diff(y2, y1));
        }
    }
}
