//! Phonetic encodings for name comparison.
//!
//! Not used by the paper's 48-feature set (Yad Vashem's expert-curated
//! equivalence classes already absorb most phonetic variation), but a
//! standard tool in the record-linkage literature the library serves:
//! classic Soundex plus a consonant-skeleton code tuned for the
//! multi-alphabet transliterations of this domain.

/// Classic (American) Soundex: first letter plus three digits.
///
/// ```
/// use yv_similarity::phonetic::soundex;
/// assert_eq!(soundex("Robert"), soundex("Rupert"));
/// assert_ne!(soundex("Robert"), soundex("Rubin"));
/// ```
#[must_use]
pub fn soundex(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(char::is_ascii_alphabetic)
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let Some(&first) = letters.first() else {
        return String::new();
    };
    fn code(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            _ => 0, // vowels, H, W, Y
        }
    }
    let mut out = String::new();
    out.push(first);
    let mut last_code = code(first);
    for &c in &letters[1..] {
        let k = code(c);
        // H and W are transparent: they do not reset the previous code.
        if c == 'H' || c == 'W' {
            continue;
        }
        if k != 0 && k != last_code {
            out.push(char::from(b'0' + k));
            if out.len() == 4 {
                break;
            }
        }
        last_code = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// A transliteration-robust consonant skeleton: fold the cross-alphabet
/// digraphs (as in [`yv_records::equivalence::fold_transliterations`]'
/// spirit), drop vowels after the first letter, collapse repeats. Two
/// names with the same skeleton are plausible transliteration variants
/// (Yitzhak / Icchok → differing Soundex, same skeleton class under the
/// fold).
#[must_use]
pub fn consonant_skeleton(name: &str) -> String {
    let folded = name
        .to_lowercase()
        .replace("tsch", "c")
        .replace("tch", "c")
        .replace("cz", "c")
        .replace("ch", "c")
        .replace("sch", "s")
        .replace("sz", "s")
        .replace("sh", "s")
        .replace("ph", "f")
        .replace("th", "t")
        .replace(['w'], "v")
        .replace(['j'], "y")
        .replace(['k', 'q'], "c")
        .replace('x', "cs");
    let mut out = String::new();
    let mut last = '\0';
    for (i, c) in folded.chars().enumerate() {
        if !c.is_ascii_alphabetic() {
            continue;
        }
        let keep = i == 0 || !"aeiouy".contains(c);
        if keep && c != last {
            out.push(c);
        }
        if keep {
            last = c;
        }
    }
    out
}

/// Binary phonetic agreement: same Soundex or same consonant skeleton.
#[must_use]
pub fn phonetic_match(a: &str, b: &str) -> bool {
    (!a.is_empty() && !b.is_empty())
        && (soundex(a) == soundex(b) || consonant_skeleton(a) == consonant_skeleton(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn soundex_reference_values() {
        // Classic reference encodings.
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex(""), "");
    }

    #[test]
    fn domain_variants_agree() {
        assert!(phonetic_match("Foa", "Foy") || soundex("Foa") == soundex("Foy"));
        assert!(phonetic_match("Szapiro", "Shapiro"));
        assert!(phonetic_match("Wolf", "Volf"));
        assert!(phonetic_match("Jakob", "Yakov") || phonetic_match("Jakob", "Yakob"));
    }

    #[test]
    fn different_names_differ() {
        assert!(!phonetic_match("Foa", "Postel"));
        assert!(!phonetic_match("Guido", "Moshe"));
    }

    #[test]
    fn skeleton_collapses_doubles_and_vowels() {
        assert_eq!(consonant_skeleton("Capelluto"), consonant_skeleton("Capeluto"));
        assert_eq!(consonant_skeleton("Anna"), consonant_skeleton("Ana"));
    }

    proptest! {
        #[test]
        fn soundex_is_four_chars_for_alphabetic(s in "[A-Za-z]{1,16}") {
            prop_assert_eq!(soundex(&s).len(), 4);
        }

        #[test]
        fn soundex_is_case_insensitive(s in "[A-Za-z]{1,12}") {
            prop_assert_eq!(soundex(&s), soundex(&s.to_lowercase()));
        }

        #[test]
        fn phonetic_match_is_reflexive(s in "[A-Za-z]{1,12}") {
            prop_assert!(phonetic_match(&s, &s));
        }

        #[test]
        fn phonetic_match_is_symmetric(a in "[A-Za-z]{1,10}", b in "[A-Za-z]{1,10}") {
            prop_assert_eq!(phonetic_match(&a, &b), phonetic_match(&b, &a));
        }
    }
}
