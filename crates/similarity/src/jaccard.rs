//! Jaccard coefficients over token sets, q-gram sets and sorted id slices.
//!
//! The Jaccard coefficient is the paper's workhorse: the `XnameDist`
//! features are q-gram Jaccard similarities between names (Section 5.1) and
//! MFIBlocks' block score is a Jaccard-style commonality measure over record
//! item bags (Section 4.1.2 / [18]).

use crate::strings::{qgrams, tokens};
use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard coefficient of two sets given as slices (elements deduplicated
/// internally).
#[must_use]
pub fn jaccard_sets<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard over whitespace tokens of two strings.
#[must_use]
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    jaccard_sets(&tokens(a), &tokens(b))
}

/// Jaccard over q-grams of two strings — the `XnameDist` measure
/// (1.0 = perfectly similar).
#[must_use]
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    jaccard_sets(&qgrams(a, q), &qgrams(b, q))
}

/// Jaccard coefficient of two strictly sorted id slices, computed by a
/// linear merge (no allocation). This is the hot-path variant used by block
/// scoring over interned item bags.
#[must_use]
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Size of the intersection of two strictly sorted id slices.
#[must_use]
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_reference() {
        assert!((jaccard_sets(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert!((jaccard_sets::<u32>(&[], &[]) - 1.0).abs() < 1e-12);
        assert!((jaccard_sets(&[1], &[2])).abs() < 1e-12);
    }

    #[test]
    fn qgram_jaccard_on_names() {
        // bella vs della: bigrams {be,el,ll,la} vs {de,el,ll,la} => 3/5.
        assert!((qgram_jaccard("bella", "della", 2) - 0.6).abs() < 1e-12);
        assert!((qgram_jaccard("guido", "guido", 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn token_jaccard_partial_overlap() {
        // {john, harris} vs {john} => 1/2.
        assert!((token_jaccard("John Harris", "john") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_variant_matches_set_variant() {
        let a = vec![1u32, 3, 5, 9];
        let b = vec![3u32, 4, 5, 10, 12];
        assert!((jaccard_sorted(&a, &b) - jaccard_sets(&a, &b)).abs() < 1e-12);
        assert_eq!(intersection_size(&a, &b), 2);
    }

    #[test]
    fn duplicates_in_input_are_deduped() {
        assert!((jaccard_sets(&[1, 1, 2], &[2, 2]) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn jaccard_sorted_agrees_with_sets(
            mut a in proptest::collection::vec(0u32..50, 0..20),
            mut b in proptest::collection::vec(0u32..50, 0..20),
        ) {
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            prop_assert!((jaccard_sorted(&a, &b) - jaccard_sets(&a, &b)).abs() < 1e-12);
        }

        #[test]
        fn jaccard_in_unit_interval(
            a in proptest::collection::vec(0u32..50, 0..20),
            b in proptest::collection::vec(0u32..50, 0..20),
        ) {
            let s = jaccard_sets(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(
            a in proptest::collection::vec(0u32..50, 0..20),
            b in proptest::collection::vec(0u32..50, 0..20),
        ) {
            prop_assert!((jaccard_sets(&a, &b) - jaccard_sets(&b, &a)).abs() < 1e-12);
        }
    }
}
