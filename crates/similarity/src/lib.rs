//! # yv-similarity
//!
//! Similarity measures and the pairwise feature extractor of the Yad Vashem
//! uncertain-ER pipeline (Section 5.1 of the paper):
//!
//! * string measures — Jaro, Jaro-Winkler, Levenshtein, token and q-gram
//!   Jaccard;
//! * geographic distance (haversine, km);
//! * date-component distances normalized by 31 / 12 / 100;
//! * the expert item-similarity function `fsim` of Eq. 1;
//! * the 48 similarity features computed over candidate record pairs and fed
//!   to the ADT classifier, with first-class missing-value support.

pub mod dates;
pub mod features;
pub mod fsim;
pub mod geo;
pub mod jaccard;
pub mod jaro;
pub mod phonetic;
pub mod strings;

pub use features::{
    extract, FeatureDef, FeatureId, FeatureKind, FeatureVector, FEATURES, FEATURE_COUNT,
};
pub use fsim::{item_similarity, weighted_item_weight, ExpertWeights};
pub use geo::haversine_km;
pub use jaro::{jaro, jaro_winkler};
