//! The 48 pairwise similarity features of Section 5.1.
//!
//! The paper "constructed every conceivable similarity feature given the
//! record attributes, assuming these will be pruned by the ADT algorithm".
//! The enumerated families are:
//!
//! * `sameXName` (7) — trinary *yes*/*partial*/*no* per name attribute;
//! * `XnameDist` (7) — q-gram Jaccard similarity, max over multi-values;
//! * `BXDist` (3) — raw day / cyclic-month / year differences (the printed
//!   models of Tables 7–8 split on raw-year thresholds such as
//!   `B3dist < 1.5`, so the tree features carry the unnormalized values);
//! * `samePlaceXPartY` (16) — binary equality per place type × part;
//! * `PlaceXGeoDistance` (4) — km between same-typed places;
//! * `sameSource`, `sameGender`, `sameProfession` (3).
//!
//! That enumeration yields 40; the remaining 8 "conceivable" features we
//! supply are Jaro-Winkler name similarities, exact full-DOB equality,
//! initial matches, a cross maiden-vs-last comparison (married-name
//! evidence), a normalized year distance and an all-names token Jaccard.
//! The ADT learner prunes what does not help, exactly as in the paper
//! (which kept only 8–10 of the 48).
//!
//! **Missing values**: if either record lacks the underlying attribute the
//! feature is *absent* (`None`) and the ADT skips splits on it — the
//! property that makes ADTrees suitable for this schema-sparse dataset.

use crate::dates::{day_diff, month_diff, year_diff};
use crate::geo::haversine_km;
use crate::jaccard::{qgram_jaccard, token_jaccard};
use crate::jaro::jaro_winkler;
use yv_records::{PlaceType, Record};

/// Index of a feature within a [`FeatureVector`].
pub type FeatureId = usize;

/// Broad feature families, used for documentation and rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// 1.0 = yes, 0.5 = partial, 0.0 = no.
    Trinary,
    /// Similarity in `[0, 1]` (1 = identical).
    Similarity,
    /// Raw non-negative difference (days, months, years, km).
    Distance,
    /// 1.0 = true, 0.0 = false.
    Binary,
}

/// Static description of one feature.
#[derive(Debug, Clone, Copy)]
pub struct FeatureDef {
    pub name: &'static str,
    pub kind: FeatureKind,
}

macro_rules! features {
    ($( $konst:ident : $name:literal => $kind:ident ),+ $(,)?) => {
        /// Named feature indices.
        pub mod ids {
            use super::FeatureId;
            features!(@consts 0usize; $($konst),+);
        }
        /// Feature metadata, indexed by [`FeatureId`].
        pub static FEATURES: &[FeatureDef] = &[
            $( FeatureDef { name: $name, kind: FeatureKind::$kind } ),+
        ];
    };
    (@consts $idx:expr; $head:ident $(, $tail:ident)*) => {
        pub const $head: FeatureId = $idx;
        features!(@consts $idx + 1; $($tail),*);
    };
    (@consts $idx:expr;) => {};
}

features! {
    SAME_FN:  "sameFN"  => Trinary,
    SAME_LN:  "sameLN"  => Trinary,
    SAME_MN:  "sameMN"  => Trinary,
    SAME_FFN: "sameFFN" => Trinary,
    SAME_MFN: "sameMFN" => Trinary,
    SAME_MMN: "sameMMN" => Trinary,
    SAME_SN:  "sameSN"  => Trinary,
    FN_DIST:  "FNdist"  => Similarity,
    LN_DIST:  "LNdist"  => Similarity,
    MN_DIST:  "MNdist"  => Similarity,
    FFN_DIST: "FFNdist" => Similarity,
    MFN_DIST: "MFNdist" => Similarity,
    MMN_DIST: "MMNdist" => Similarity,
    SN_DIST:  "SNdist"  => Similarity,
    B1_DIST:  "B1dist"  => Distance,
    B2_DIST:  "B2dist"  => Distance,
    B3_DIST:  "B3dist"  => Distance,
    SAME_BP1: "sameBP1" => Binary,
    SAME_BP2: "sameBP2" => Binary,
    SAME_BP3: "sameBP3" => Binary,
    SAME_BP4: "sameBP4" => Binary,
    SAME_P1:  "sameP1"  => Binary,
    SAME_P2:  "sameP2"  => Binary,
    SAME_P3:  "sameP3"  => Binary,
    SAME_P4:  "sameP4"  => Binary,
    SAME_WP1: "sameWP1" => Binary,
    SAME_WP2: "sameWP2" => Binary,
    SAME_WP3: "sameWP3" => Binary,
    SAME_WP4: "sameWP4" => Binary,
    SAME_DP1: "sameDP1" => Binary,
    SAME_DP2: "sameDP2" => Binary,
    SAME_DP3: "sameDP3" => Binary,
    SAME_DP4: "sameDP4" => Binary,
    BP_GEO:   "BPGeoDist" => Distance,
    P_GEO:    "PPGeoDist" => Distance,
    WP_GEO:   "WPGeoDist" => Distance,
    DP_GEO:   "DPGeoDist" => Distance,
    SAME_SOURCE:     "sameSource"     => Binary,
    SAME_GENDER:     "sameGender"     => Binary,
    SAME_PROFESSION: "sameProfession" => Binary,
    FN_JW:    "FNjw" => Similarity,
    LN_JW:    "LNjw" => Similarity,
    SAME_FULL_DOB:   "sameFullDOB"   => Binary,
    SAME_FIRST_INIT: "sameFirstInit" => Binary,
    SAME_LAST_INIT:  "sameLastInit"  => Binary,
    CROSS_MAIDEN_LAST: "crossMaidenLast" => Binary,
    B3_DIST_NORM: "B3distNorm" => Similarity,
    ALL_NAMES_DIST: "allNamesDist" => Similarity,
}

/// Number of features (48, as in the paper).
pub const FEATURE_COUNT: usize = 48;

/// A pairwise feature vector with per-feature missing-value support.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: [Option<f64>; FEATURE_COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        FeatureVector { values: [None; FEATURE_COUNT] }
    }
}

impl FeatureVector {
    /// The value of a feature, `None` when the underlying attributes are
    /// missing on either record.
    #[must_use]
    pub fn get(&self, id: FeatureId) -> Option<f64> {
        self.values[id]
    }

    /// Set a feature value.
    pub fn set(&mut self, id: FeatureId, value: f64) {
        self.values[id] = Some(value);
    }

    /// Number of present (non-missing) features.
    #[must_use]
    pub fn present(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Iterate over `(id, value)` for present features.
    pub fn iter_present(&self) -> impl Iterator<Item = (FeatureId, f64)> + '_ {
        self.values.iter().enumerate().filter_map(|(i, v)| v.map(|x| (i, x)))
    }
}

/// Trinary comparison of two multi-valued name attributes: 1.0 when the
/// value sets are equal, 0.5 when they intersect, 0.0 when disjoint
/// (case-insensitive).
fn trinary(a: &[String], b: &[String]) -> f64 {
    let sa: std::collections::BTreeSet<String> = a.iter().map(|s| s.to_lowercase()).collect();
    let sb: std::collections::BTreeSet<String> = b.iter().map(|s| s.to_lowercase()).collect();
    if sa == sb {
        1.0
    } else if sa.intersection(&sb).next().is_some() {
        0.5
    } else {
        0.0
    }
}

/// Max q-gram (q=2) Jaccard similarity over the cross product of two
/// multi-valued names.
fn name_dist(a: &[String], b: &[String]) -> f64 {
    let mut best: f64 = 0.0;
    for x in a {
        for y in b {
            best = best.max(qgram_jaccard(&x.to_lowercase(), &y.to_lowercase(), 2));
        }
    }
    best
}

/// Max Jaro-Winkler over the cross product of two multi-valued names.
fn name_jw(a: &[String], b: &[String]) -> f64 {
    let mut best: f64 = 0.0;
    for x in a {
        for y in b {
            best = best.max(jaro_winkler(&x.to_lowercase(), &y.to_lowercase()));
        }
    }
    best
}

fn opt_slice(v: &Option<String>) -> Option<Vec<String>> {
    v.as_ref().map(|s| vec![s.clone()])
}

fn set_name_features(
    fv: &mut FeatureVector,
    same_id: FeatureId,
    dist_id: FeatureId,
    a: Option<&[String]>,
    b: Option<&[String]>,
) {
    if let (Some(a), Some(b)) = (a, b) {
        if !a.is_empty() && !b.is_empty() {
            fv.set(same_id, trinary(a, b));
            fv.set(dist_id, name_dist(a, b));
        }
    }
}

fn eq_ci(a: &str, b: &str) -> bool {
    a.eq_ignore_ascii_case(b) || a.to_lowercase() == b.to_lowercase()
}

/// Extract the 48-feature vector for a candidate record pair.
///
/// The `sameSource` feature comes from comparing the records'
/// [`yv_records::SourceId`]s — equal ids mean the same victim list or the
/// same testimony submitter.
#[must_use]
pub fn extract(a: &Record, b: &Record) -> FeatureVector {
    let mut fv = FeatureVector::default();

    // -- Name families -----------------------------------------------------
    set_name_features(
        &mut fv,
        ids::SAME_FN,
        ids::FN_DIST,
        Some(&a.first_names),
        Some(&b.first_names),
    );
    set_name_features(
        &mut fv,
        ids::SAME_LN,
        ids::LN_DIST,
        Some(&a.last_names),
        Some(&b.last_names),
    );
    let pairs = [
        (ids::SAME_MN, ids::MN_DIST, &a.maiden_name, &b.maiden_name),
        (ids::SAME_FFN, ids::FFN_DIST, &a.father_name, &b.father_name),
        (ids::SAME_MFN, ids::MFN_DIST, &a.mother_name, &b.mother_name),
        (ids::SAME_MMN, ids::MMN_DIST, &a.mothers_maiden, &b.mothers_maiden),
        (ids::SAME_SN, ids::SN_DIST, &a.spouse_name, &b.spouse_name),
    ];
    for (same_id, dist_id, va, vb) in pairs {
        let (sa, sb) = (opt_slice(va), opt_slice(vb));
        set_name_features(&mut fv, same_id, dist_id, sa.as_deref(), sb.as_deref());
    }

    // -- Birth-date components ----------------------------------------------
    if let (Some(d1), Some(d2)) = (a.birth.day, b.birth.day) {
        fv.set(ids::B1_DIST, f64::from(day_diff(d1, d2)));
    }
    if let (Some(m1), Some(m2)) = (a.birth.month, b.birth.month) {
        fv.set(ids::B2_DIST, f64::from(month_diff(m1, m2)));
    }
    if let (Some(y1), Some(y2)) = (a.birth.year, b.birth.year) {
        fv.set(ids::B3_DIST, f64::from(year_diff(y1, y2)));
        fv.set(ids::B3_DIST_NORM, 1.0 - (f64::from(year_diff(y1, y2)) / 100.0).min(1.0));
    }
    if let (Some(da), Some(db)) = (
        a.birth.day.zip(a.birth.month).zip(a.birth.year),
        b.birth.day.zip(b.birth.month).zip(b.birth.year),
    ) {
        fv.set(ids::SAME_FULL_DOB, f64::from(da == db));
    }

    // -- Places ---------------------------------------------------------------
    let place_feature_base: [(PlaceType, FeatureId, FeatureId); 4] = [
        (PlaceType::Birth, ids::SAME_BP1, ids::BP_GEO),
        (PlaceType::Permanent, ids::SAME_P1, ids::P_GEO),
        (PlaceType::Wartime, ids::SAME_WP1, ids::WP_GEO),
        (PlaceType::Death, ids::SAME_DP1, ids::DP_GEO),
    ];
    for (ty, same_base, geo_id) in place_feature_base {
        if let (Some(pa), Some(pb)) = (a.place(ty), b.place(ty)) {
            for (k, part) in yv_records::field::PlacePart::ALL.iter().enumerate() {
                if let (Some(x), Some(y)) = (pa.part(*part), pb.part(*part)) {
                    fv.set(same_base + k, f64::from(eq_ci(x, y)));
                }
            }
            if let (Some(g1), Some(g2)) = (pa.coords, pb.coords) {
                fv.set(geo_id, haversine_km(g1, g2));
            }
        }
    }

    // -- Codes ------------------------------------------------------------------
    if let (Some(g1), Some(g2)) = (a.gender, b.gender) {
        fv.set(ids::SAME_GENDER, f64::from(g1 == g2));
    }
    if let (Some(p1), Some(p2)) = (&a.profession, &b.profession) {
        fv.set(ids::SAME_PROFESSION, f64::from(eq_ci(p1, p2)));
    }
    fv.set(ids::SAME_SOURCE, f64::from(a.source == b.source));

    // -- Extra conceivable features ----------------------------------------------
    if !a.first_names.is_empty() && !b.first_names.is_empty() {
        fv.set(ids::FN_JW, name_jw(&a.first_names, &b.first_names));
        let init_match = a.first_names.iter().any(|x| {
            b.first_names.iter().any(|y| {
                x.chars().next().map(|c| c.to_lowercase().to_string())
                    == y.chars().next().map(|c| c.to_lowercase().to_string())
            })
        });
        fv.set(ids::SAME_FIRST_INIT, f64::from(init_match));
    }
    if !a.last_names.is_empty() && !b.last_names.is_empty() {
        fv.set(ids::LN_JW, name_jw(&a.last_names, &b.last_names));
        let init_match = a.last_names.iter().any(|x| {
            b.last_names.iter().any(|y| {
                x.chars().next().map(|c| c.to_lowercase().to_string())
                    == y.chars().next().map(|c| c.to_lowercase().to_string())
            })
        });
        fv.set(ids::SAME_LAST_INIT, f64::from(init_match));
    }
    // Married-name evidence: one record's maiden name equals the other's
    // last name.
    let cross_ab = a
        .maiden_name
        .as_ref()
        .map(|m| b.last_names.iter().any(|l| eq_ci(m, l)));
    let cross_ba = b
        .maiden_name
        .as_ref()
        .map(|m| a.last_names.iter().any(|l| eq_ci(m, l)));
    if let Some(hit) = match (cross_ab, cross_ba) {
        (None, None) => None,
        (x, y) => Some(x.unwrap_or(false) || y.unwrap_or(false)),
    } {
        fv.set(ids::CROSS_MAIDEN_LAST, f64::from(hit));
    }
    // Token Jaccard over the union of all name tokens of each record.
    let all_names = |r: &Record| {
        let mut s = String::new();
        for n in r.first_names.iter().chain(&r.last_names) {
            s.push_str(n);
            s.push(' ');
        }
        for n in [&r.maiden_name, &r.father_name, &r.mother_name, &r.mothers_maiden, &r.spouse_name]
            .into_iter()
            .flatten()
        {
            s.push_str(n);
            s.push(' ');
        }
        s
    };
    let (na, nb) = (all_names(a), all_names(b));
    if !na.trim().is_empty() && !nb.trim().is_empty() {
        fv.set(ids::ALL_NAMES_DIST, token_jaccard(&na, &nb));
    }

    fv
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_records::{DateParts, Gender, GeoPoint, Place, RecordBuilder, SourceId};

    fn guido_a() -> Record {
        RecordBuilder::new(1059654, SourceId(1))
            .first_name("Guido")
            .last_name("Foa")
            .gender(Gender::Male)
            .birth(DateParts::full(18, 11, 1920))
            .spouse_name("Helena")
            .mother_name("Olga")
            .father_name("Donato")
            .place(
                PlaceType::Birth,
                Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69)),
            )
            .build()
    }

    fn guido_b() -> Record {
        RecordBuilder::new(1028769, SourceId(2))
            .first_name("Guido")
            .last_name("Foy")
            .gender(Gender::Male)
            .birth(DateParts::full(18, 11, 1920))
            .mother_name("Olga")
            .father_name("Donato")
            .place(
                PlaceType::Birth,
                Place::full("Turin", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69)),
            )
            .build()
    }

    #[test]
    fn feature_count_is_48() {
        assert_eq!(FEATURES.len(), FEATURE_COUNT);
    }

    #[test]
    fn feature_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in FEATURES {
            assert!(seen.insert(f.name), "duplicate {}", f.name);
        }
    }

    #[test]
    fn matching_pair_features() {
        let fv = extract(&guido_a(), &guido_b());
        assert_eq!(fv.get(ids::SAME_FN), Some(1.0));
        assert_eq!(fv.get(ids::SAME_FFN), Some(1.0));
        assert_eq!(fv.get(ids::SAME_MFN), Some(1.0));
        assert_eq!(fv.get(ids::SAME_GENDER), Some(1.0));
        assert_eq!(fv.get(ids::B3_DIST), Some(0.0));
        assert_eq!(fv.get(ids::SAME_FULL_DOB), Some(1.0));
        // Foa vs Foy: same != 1, dist in (0,1).
        assert_eq!(fv.get(ids::SAME_LN), Some(0.0));
        let ln = fv.get(ids::LN_DIST).unwrap();
        assert!(ln > 0.0 && ln < 1.0);
        // Torino vs Turin: different strings, same coordinates.
        assert_eq!(fv.get(ids::SAME_BP1), Some(0.0));
        assert_eq!(fv.get(ids::SAME_BP2), Some(1.0));
        assert!(fv.get(ids::BP_GEO).unwrap() < 1.0);
        assert_eq!(fv.get(ids::SAME_SOURCE), Some(0.0));
    }

    #[test]
    fn missing_attributes_yield_missing_features() {
        let fv = extract(&guido_a(), &guido_b());
        // guido_b has no spouse => spouse features absent.
        assert_eq!(fv.get(ids::SAME_SN), None);
        assert_eq!(fv.get(ids::SN_DIST), None);
        // Neither has a death place.
        assert_eq!(fv.get(ids::SAME_DP1), None);
        assert_eq!(fv.get(ids::DP_GEO), None);
        // Neither has a profession.
        assert_eq!(fv.get(ids::SAME_PROFESSION), None);
    }

    #[test]
    fn trinary_partial_on_multivalued_names() {
        let a = RecordBuilder::new(1, SourceId(0))
            .first_name("John")
            .first_name("Harris")
            .build();
        let b = RecordBuilder::new(2, SourceId(0)).first_name("John").build();
        let fv = extract(&a, &b);
        assert_eq!(fv.get(ids::SAME_FN), Some(0.5));
    }

    #[test]
    fn same_source_feature() {
        let a = RecordBuilder::new(1, SourceId(7)).first_name("A").build();
        let b = RecordBuilder::new(2, SourceId(7)).first_name("B").build();
        let fv = extract(&a, &b);
        assert_eq!(fv.get(ids::SAME_SOURCE), Some(1.0));
    }

    #[test]
    fn cross_maiden_last_detects_married_name() {
        let wife_list = RecordBuilder::new(1, SourceId(0))
            .first_name("Zimbul")
            .last_name("Capelluto")
            .build();
        let wife_testimony = RecordBuilder::new(2, SourceId(1))
            .first_name("Zimbul")
            .last_name("Levi")
            .maiden_name("Capelluto")
            .build();
        let fv = extract(&wife_list, &wife_testimony);
        assert_eq!(fv.get(ids::CROSS_MAIDEN_LAST), Some(1.0));
    }

    #[test]
    fn empty_records_have_minimal_features() {
        let a = RecordBuilder::new(1, SourceId(0)).build();
        let b = RecordBuilder::new(2, SourceId(1)).build();
        let fv = extract(&a, &b);
        // Only sameSource is always present.
        assert_eq!(fv.present(), 1);
        assert_eq!(fv.get(ids::SAME_SOURCE), Some(0.0));
    }

    #[test]
    fn iter_present_matches_get() {
        let fv = extract(&guido_a(), &guido_b());
        for (id, v) in fv.iter_present() {
            assert_eq!(fv.get(id), Some(v));
        }
        assert_eq!(fv.iter_present().count(), fv.present());
    }
}
