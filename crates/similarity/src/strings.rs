//! Basic string utilities: Levenshtein distance, tokenization and q-grams.

/// Levenshtein edit distance between two strings (unit costs), computed over
/// Unicode scalar values with the classic two-row dynamic program.
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]` (1 = identical).
#[must_use]
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Split a value into lowercase whitespace-delimited tokens.
#[must_use]
pub fn tokens(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_lowercase).collect()
}

/// The q-grams of a string: contiguous character windows of length `q`.
/// Strings shorter than `q` yield a single gram (the whole string), so
/// short names still compare meaningfully.
#[must_use]
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![chars.iter().collect()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Padded q-grams as used by Q-grams blocking (QGBl): the string is padded
/// with `q-1` sentinel characters on both sides so boundary characters
/// participate in `q` grams each.
#[must_use]
pub fn padded_qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    if s.is_empty() {
        return Vec::new();
    }
    let pad: String = std::iter::repeat_n('#', q - 1).collect();
    let padded = format!("{pad}{s}{pad}");
    qgrams(&padded, q)
}

/// All suffixes of a string of length at least `min_len` (Suffix-Arrays
/// blocking, SuAr). The string itself is always included when non-empty.
#[must_use]
pub fn suffixes(s: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for start in 0..chars.len() {
        if chars.len() - start >= min_len {
            out.push(chars[start..].iter().collect());
        }
    }
    if out.is_empty() {
        out.push(s.to_owned());
    }
    out
}

/// All substrings of length at least `min_len` (Extended Suffix-Arrays,
/// ESuAr).
#[must_use]
pub fn substrings(s: &str, min_len: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    for start in 0..chars.len() {
        for end in start + min_len.max(1)..=chars.len() {
            out.push(chars[start..end].iter().collect());
        }
    }
    if out.is_empty() && !chars.is_empty() {
        out.push(s.to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("bella", "della"), 1);
        assert_eq!(levenshtein("foa", "foy"), 1);
    }

    #[test]
    fn levenshtein_sim_range() {
        assert!((levenshtein_sim("guido", "guido") - 1.0).abs() < 1e-12);
        assert!((levenshtein_sim("", "") - 1.0).abs() < 1e-12);
        assert!(levenshtein_sim("abc", "xyz") < 1e-12);
    }

    #[test]
    fn qgrams_of_short_strings() {
        assert_eq!(qgrams("ab", 2), vec!["ab"]);
        assert_eq!(qgrams("a", 2), vec!["a"]);
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn qgrams_window() {
        assert_eq!(qgrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(qgrams("abcd", 3), vec!["abc", "bcd"]);
    }

    #[test]
    fn padded_qgrams_cover_boundaries() {
        let grams = padded_qgrams("ab", 2);
        assert_eq!(grams, vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn suffixes_respect_min_len() {
        assert_eq!(suffixes("torino", 4), vec!["torino", "orino", "rino"]);
        // Short strings fall back to the whole string.
        assert_eq!(suffixes("ab", 4), vec!["ab"]);
        assert!(suffixes("", 4).is_empty());
    }

    #[test]
    fn substrings_include_suffixes() {
        let subs = substrings("abc", 2);
        for suf in suffixes("abc", 2) {
            assert!(subs.contains(&suf));
        }
        assert!(subs.contains(&"ab".to_owned()));
    }

    #[test]
    fn tokens_lowercase_and_split() {
        assert_eq!(tokens("Guido  Foa"), vec!["guido", "foa"]);
        assert!(tokens("   ").is_empty());
    }

    proptest! {
        #[test]
        fn levenshtein_is_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_triangle_inequality(
            a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}"
        ) {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn levenshtein_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn qgram_count_matches_length(s in "[a-z]{1,20}") {
            let n = s.chars().count();
            let grams = qgrams(&s, 2);
            prop_assert_eq!(grams.len(), if n <= 2 { 1 } else { n - 1 });
        }

        #[test]
        fn levenshtein_sim_in_unit_interval(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let s = levenshtein_sim(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
