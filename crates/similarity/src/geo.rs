//! Great-circle distance between geographic coordinates.

use yv_records::GeoPoint;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Haversine great-circle distance in kilometres.
///
/// Used by the `PlaceXGeoDistance` features ("for two records with birth
/// places of Turin and Moncalieri, the value would be 9 (KM)") and the `Geo`
/// branch of Eq. 1.
#[must_use]
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TURIN: GeoPoint = GeoPoint { lat: 45.0703, lon: 7.6869 };
    const MONCALIERI: GeoPoint = GeoPoint { lat: 44.9996, lon: 7.6828 };
    const ROME: GeoPoint = GeoPoint { lat: 41.9028, lon: 12.4964 };

    #[test]
    fn turin_to_moncalieri_is_about_9km() {
        let d = haversine_km(TURIN, MONCALIERI);
        assert!((7.0..11.0).contains(&d), "got {d}");
    }

    #[test]
    fn turin_to_rome_is_about_525km() {
        let d = haversine_km(TURIN, ROME);
        assert!((500.0..560.0).contains(&d), "got {d}");
    }

    #[test]
    fn zero_distance_to_self() {
        assert!(haversine_km(TURIN, TURIN).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn symmetric_and_nonnegative(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let d1 = haversine_km(a, b);
            let d2 = haversine_km(b, a);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-6);
            // Never more than half the circumference.
            prop_assert!(d1 <= std::f64::consts::PI * 6371.0 + 1.0);
        }
    }
}
