//! Jaro and Jaro-Winkler similarity.
//!
//! Jaro-Winkler is the paper's choice for comparing name items (the `Name`
//! branch of Eq. 1) and a standard measure for short person names: it
//! rewards agreeing prefixes, matching the observation that clerical errors
//! tend to hit the tail of a transcribed name.

/// Jaro similarity in `[0, 1]`.
#[must_use]
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_match_flags = vec![false; a.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_match_flags[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions: matched characters out of order.
    let a_matches: Vec<char> =
        a.iter().zip(&a_match_flags).filter(|(_, &f)| f).map(|(&c, _)| c).collect();
    let b_matches: Vec<char> =
        b.iter().zip(&b_matched).filter(|(_, &f)| f).map(|(&c, _)| c).collect();
    let transpositions =
        a_matches.iter().zip(&b_matches).filter(|(x, y)| x != y).count() / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a
/// prefix cap of 4 characters.
#[must_use]
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    let jw = j + prefix as f64 * 0.1 * (1.0 - j);
    jw.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_reference_values() {
        // Classic reference pairs from the record-linkage literature.
        assert!(close(jaro("martha", "marhta"), 0.944));
        assert!(close(jaro("dixon", "dicksonx"), 0.767));
        assert!(close(jaro("jellyfish", "smellyfish"), 0.896));
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!(close(jaro_winkler("martha", "marhta"), 0.961));
        assert!(close(jaro_winkler("dixon", "dicksonx"), 0.813));
    }

    #[test]
    fn identical_and_disjoint() {
        assert!(close(jaro("guido", "guido"), 1.0));
        assert!(close(jaro_winkler("guido", "guido"), 1.0));
        assert!(close(jaro("abc", "xyz"), 0.0));
        assert!(close(jaro_winkler("abc", "xyz"), 0.0));
    }

    #[test]
    fn empty_strings() {
        assert!(close(jaro("", ""), 1.0));
        assert!(close(jaro("a", ""), 0.0));
        assert!(close(jaro("", "a"), 0.0));
    }

    #[test]
    fn winkler_rewards_shared_prefix() {
        // "foa" vs "foy" share a 2-char prefix; JW must exceed plain Jaro.
        let j = jaro("foa", "foy");
        let jw = jaro_winkler("foa", "foy");
        assert!(jw > j);
    }

    proptest! {
        #[test]
        fn jaro_in_unit_interval(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let s = jaro(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        }

        #[test]
        fn jaro_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn jaro_winkler_dominates_jaro(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
            prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
        }

        #[test]
        fn jaro_identity(a in "[a-z]{1,12}") {
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
