//! Precision / recall / F-1 over candidate-pair sets.

use std::collections::HashSet;
use yv_records::RecordId;

/// Precision, recall and their harmonic mean.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Prf {
    /// Build from counts.
    #[must_use]
    pub fn from_counts(true_positives: u64, candidates: u64, gold: u64) -> Prf {
        let precision =
            if candidates == 0 { 0.0 } else { true_positives as f64 / candidates as f64 };
        let recall = if gold == 0 { 1.0 } else { true_positives as f64 / gold as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf { precision, recall, f1 }
    }
}

/// Evaluate a candidate-pair list against a gold pair set (pairs
/// normalized `a < b` on both sides).
#[must_use]
pub fn prf(
    candidates: &[(RecordId, RecordId)],
    gold: &HashSet<(RecordId, RecordId)>,
) -> Prf {
    let tp = candidates.iter().filter(|p| gold.contains(*p)).count() as u64;
    Prf::from_counts(tp, candidates.len() as u64, gold.len() as u64)
}

/// Classification accuracy over labelled predictions.
#[must_use]
pub fn accuracy(predictions: &[(bool, bool)]) -> f64 {
    if predictions.is_empty() {
        return 1.0;
    }
    predictions.iter().filter(|(pred, truth)| pred == truth).count() as f64
        / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> (RecordId, RecordId) {
        (RecordId(a), RecordId(b))
    }

    #[test]
    fn prf_basic() {
        let gold: HashSet<_> = [pair(0, 1), pair(2, 3)].into();
        let candidates = vec![pair(0, 1), pair(4, 5)];
        let m = prf(&candidates, &gold);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let gold: HashSet<_> = HashSet::new();
        let m = prf(&[], &gold);
        assert_eq!(m.precision, 0.0);
        assert!((m.recall - 1.0).abs() < 1e-12);
        let m2 = Prf::from_counts(0, 0, 5);
        assert_eq!(m2.f1, 0.0);
    }

    #[test]
    fn perfect_scores() {
        let gold: HashSet<_> = [pair(0, 1)].into();
        let m = prf(&[pair(0, 1)], &gold);
        assert!((m.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_agreement() {
        assert!((accuracy(&[(true, true), (false, true)]) - 0.5).abs() < 1e-12);
        assert!((accuracy(&[]) - 1.0).abs() < 1e-12);
    }
}
