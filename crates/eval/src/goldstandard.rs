//! The tagged gold standard, constructed the way the paper constructed it.
//!
//! Section 5.1: candidate pairs were collected from several MFIBlocks
//! configurations, bundled into a tagging application and labelled by Yad
//! Vashem archival experts on the five-level scale. The exhaustive pair
//! set was too large to review, so the standard has acknowledged false
//! negatives — quality numbers in Sections 6.4–6.6 are relative to this
//! standard, not to complete ground truth.

use std::collections::HashSet;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::{tag_pairs, ExpertTag, Generated, TaggedPair};
use yv_records::RecordId;

/// The tagged standard: expert-tagged pairs plus the derived matched-pair
/// set (Yes ∪ ProbablyYes after the Section 5.1 simplification).
#[derive(Debug, Clone)]
pub struct TaggedStandard {
    pub pairs: Vec<TaggedPair>,
    /// Simplified positive pairs.
    pub matched: HashSet<(RecordId, RecordId)>,
}

impl TaggedStandard {
    /// Count of pairs with a given tag.
    #[must_use]
    pub fn tag_count(&self, tag: ExpertTag) -> usize {
        self.pairs.iter().filter(|p| p.tag == tag).count()
    }

    /// Pairs involving any record of `records` removed (used by the
    /// MV-ablation of Table 6).
    #[must_use]
    pub fn without_records(&self, records: &HashSet<RecordId>) -> TaggedStandard {
        let pairs: Vec<TaggedPair> = self
            .pairs
            .iter()
            .filter(|p| !records.contains(&p.a) && !records.contains(&p.b))
            .copied()
            .collect();
        let matched = pairs
            .iter()
            .filter(|p| p.simplified() == Some(true))
            .map(|p| (p.a, p.b))
            .collect();
        TaggedStandard { pairs, matched }
    }
}

/// The configurations whose candidate unions form the standard ("MFIBlocks
/// was run several times and with several configurations").
#[must_use]
pub fn standard_configs() -> Vec<MfiBlocksConfig> {
    vec![
        MfiBlocksConfig::expert_weighting().with_max_minsup(5).with_ng(3.0),
        MfiBlocksConfig::expert_weighting().with_max_minsup(5).with_ng(4.0),
        MfiBlocksConfig::expert_weighting().with_max_minsup(6).with_ng(3.0),
        MfiBlocksConfig::base().with_max_minsup(4).with_ng(5.0),
    ]
}

/// Build the tagged standard for a generated dataset: union the candidate
/// pairs of [`standard_configs`], tag them with the expert oracle.
#[must_use]
pub fn build_tagged_standard(gen: &Generated, seed: u64) -> TaggedStandard {
    let mut union: HashSet<(RecordId, RecordId)> = HashSet::new();
    for config in standard_configs() {
        let result = mfi_blocks(&gen.dataset, &config);
        union.extend(result.candidate_pairs);
    }
    let mut pairs: Vec<(RecordId, RecordId)> = union.into_iter().collect();
    pairs.sort_unstable();
    let tagged = tag_pairs(gen, &pairs, seed);
    let matched = tagged
        .iter()
        .filter(|p| p.simplified() == Some(true))
        .map(|p| (p.a, p.b))
        .collect();
    TaggedStandard { pairs: tagged, matched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yv_datagen::GenConfig;

    fn standard() -> (Generated, TaggedStandard) {
        let gen = GenConfig::random(800, 3).generate();
        let std = build_tagged_standard(&gen, 17);
        (gen, std)
    }

    #[test]
    fn standard_is_nonempty_and_consistent() {
        let (_, std) = standard();
        assert!(!std.pairs.is_empty());
        assert!(!std.matched.is_empty());
        for &(a, b) in &std.matched {
            assert!(a < b);
        }
        assert!(std.matched.len() <= std.pairs.len());
    }

    #[test]
    fn matched_pairs_are_mostly_true_matches() {
        let (gen, std) = standard();
        let correct =
            std.matched.iter().filter(|&&(a, b)| gen.is_match(a, b)).count();
        let frac = correct as f64 / std.matched.len() as f64;
        assert!(frac > 0.8, "oracle-tagged standard purity {frac}");
    }

    #[test]
    fn maybe_pairs_exist(){
        let (_, std) = standard();
        assert!(std.tag_count(ExpertTag::Maybe) > 0);
    }

    #[test]
    fn without_records_removes_pairs() {
        let (_, std) = standard();
        let victim = std.pairs[0].a;
        let removed = std.without_records(&HashSet::from([victim]));
        assert!(removed.pairs.iter().all(|p| p.a != victim && p.b != victim));
        assert!(removed.pairs.len() < std.pairs.len());
    }

    #[test]
    fn deterministic() {
        let gen = GenConfig::random(500, 9).generate();
        let a = build_tagged_standard(&gen, 1);
        let b = build_tagged_standard(&gen, 1);
        assert_eq!(a.pairs.len(), b.pairs.len());
        assert_eq!(a.matched, b.matched);
    }
}
