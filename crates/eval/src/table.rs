//! Plain-text table rendering for experiment reports.

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row; panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three decimals (quality numbers).
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a fraction as a percentage.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Format a count with thousands separators.
#[must_use]
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Name", "Value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("Name"));
        // The value column starts at the same offset on every row.
        let offset = lines[1].find("Value").unwrap();
        assert_eq!(&lines[3][offset..offset + 1], "1");
        assert_eq!(&lines[4][offset..offset + 1], "2");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.123456), "0.123");
        assert_eq!(pct(0.52), "52%");
        assert_eq!(count(6478181), "6,478,181");
        assert_eq!(count(42), "42");
    }
}
