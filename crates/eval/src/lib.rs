//! # yv-eval
//!
//! The experiment harness: metrics, the tagged gold standard built the way
//! the paper built it, and one regeneration function per table and figure
//! of Section 6.
//!
//! **Methodology note.** The paper's golden standard is not exhaustive
//! ground truth: "To obtain expert tags, MFIBlocks was run several times
//! and with several configurations on the Italy set. The candidate pairs
//! from this process were bundled into a tagging application" (Section
//! 5.1) -- i.e. recall/precision in Section 6.5-6.6 are measured against
//! the union of expert-tagged MFIBlocks candidates, with acknowledged
//! false negatives outside it. [`goldstandard::build_tagged_standard`]
//! reproduces exactly that construction against the synthetic oracle; the
//! experiment reports additionally show metrics against the generator's
//! complete ground truth, which the paper could not observe.

pub mod blocking_metrics;
pub mod experiments;
pub mod goldstandard;
pub mod metrics;
pub mod table;

pub use blocking_metrics::BlockingMetrics;
pub use experiments::{run_all, Report, Scale};
pub use goldstandard::{build_tagged_standard, TaggedStandard};
pub use metrics::{accuracy, prf, Prf};
pub use table::Table;
