//! The blocking-metric vocabulary of the comparative-survey literature
//! ([24], Christen's survey [9]): reduction ratio, pairs completeness and
//! pairs quality. Table 10 reports recall/precision (≡ PC/PQ); these
//! helpers expose the standard names plus the reduction ratio the paper
//! cites in Section 3.1 ("blocking techniques manage to reduce the number
//! of pair-wise comparisons by 87–97%").

/// The three standard blocking metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingMetrics {
    /// `RR = 1 − |candidates| / |all pairs|`: how much of the Cartesian
    /// product the blocker avoided.
    pub reduction_ratio: f64,
    /// `PC = |candidates ∩ gold| / |gold|` — recall of the candidate set.
    pub pairs_completeness: f64,
    /// `PQ = |candidates ∩ gold| / |candidates|` — precision of the
    /// candidate set.
    pub pairs_quality: f64,
}

impl BlockingMetrics {
    /// Compute from counts. `n_records` determines the Cartesian product.
    #[must_use]
    pub fn from_counts(
        n_records: u64,
        candidates: u64,
        true_positives: u64,
        gold: u64,
    ) -> BlockingMetrics {
        let all_pairs = n_records * n_records.saturating_sub(1) / 2;
        BlockingMetrics {
            reduction_ratio: if all_pairs == 0 {
                1.0
            } else {
                1.0 - candidates as f64 / all_pairs as f64
            },
            pairs_completeness: if gold == 0 {
                1.0
            } else {
                true_positives as f64 / gold as f64
            },
            pairs_quality: if candidates == 0 {
                0.0
            } else {
                true_positives as f64 / candidates as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example() {
        // 100 records => 4,950 pairs; a blocker keeping 495 candidates of
        // which 40 are among the 50 gold pairs.
        let m = BlockingMetrics::from_counts(100, 495, 40, 50);
        assert!((m.reduction_ratio - 0.9).abs() < 1e-12);
        assert!((m.pairs_completeness - 0.8).abs() < 1e-12);
        assert!((m.pairs_quality - 40.0 / 495.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = BlockingMetrics::from_counts(0, 0, 0, 0);
        assert_eq!(empty.reduction_ratio, 1.0);
        assert_eq!(empty.pairs_completeness, 1.0);
        assert_eq!(empty.pairs_quality, 0.0);
        let one = BlockingMetrics::from_counts(1, 0, 0, 0);
        assert_eq!(one.reduction_ratio, 1.0);
    }

    #[test]
    fn mfiblocks_hits_the_survey_reduction_band() {
        // The paper cites 87–97% comparison reduction for blocking in
        // general; MFIBlocks on generated data exceeds even that.
        let gen = yv_datagen::GenConfig::random(1_000, 7).generate();
        let result =
            yv_blocking::mfi_blocks(&gen.dataset, &yv_blocking::MfiBlocksConfig::default());
        let gold: std::collections::HashSet<_> = gen.matching_pairs().into_iter().collect();
        let tp = result.candidate_pairs.iter().filter(|p| gold.contains(*p)).count();
        let m = BlockingMetrics::from_counts(
            gen.dataset.len() as u64,
            result.candidate_pairs.len() as u64,
            tp as u64,
            gold.len() as u64,
        );
        assert!(m.reduction_ratio > 0.87, "RR {}", m.reduction_ratio);
        assert!(m.pairs_completeness > 0.4);
    }
}
