//! One regeneration function per table and figure of Section 6.
//!
//! Every experiment returns a [`Report`] whose `body` is the regenerated
//! table (or the table form of a figure's series) and whose `notes` state
//! the shape expectation inherited from the paper. `run_all` executes the
//! entire evaluation and is what the `reproduce` binary and the benches
//! call.

pub mod ablation;
pub mod blocking_comparison;
pub mod classifier;
pub mod conditions;
pub mod data_stats;
pub mod fig12;
pub mod fig8;
pub mod resolve_quality;
pub mod sweep;

use crate::goldstandard::{build_tagged_standard, TaggedStandard};
use yv_datagen::{italy_set, Generated};

/// A regenerated table or figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Paper artifact id, e.g. `"Table 9"` or `"Figure 15"`.
    pub id: String,
    pub title: String,
    /// Rendered table(s).
    pub body: String,
    /// Shape expectations and deviations worth knowing about.
    pub notes: String,
}

impl Report {
    /// Render for the terminal / EXPERIMENTS.md.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n{}", self.id, self.title, self.body);
        if !self.notes.is_empty() {
            out.push_str(&format!("\nNotes: {}\n", self.notes));
        }
        out
    }
}

/// Dataset scaling knobs. The paper's full dataset has 6.5M records; these
/// defaults keep the whole evaluation laptop-scale while preserving every
/// shape (EXPERIMENTS.md records the mapping).
#[derive(Debug, Clone)]
pub struct Scale {
    pub seed: u64,
    /// Stand-in for the 100K stratified random sample.
    pub random_n: usize,
    /// Stand-in for the 6.5M full dataset.
    pub full_n: usize,
    /// Figure 12's two dataset sizes (paper: 6.5M and 600K — a ~10×
    /// ratio, which we preserve).
    pub fig12_large: usize,
    pub fig12_small: usize,
    /// NG sweep of Figures 15–16.
    pub sweep_ngs: Vec<f64>,
    /// MaxMinSup sweep of Figures 15–16.
    pub sweep_minsups: Vec<u64>,
    /// Cross-validation folds for classifier accuracy (Tables 5–6).
    pub cv_folds: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            seed: 7,
            random_n: 20_000,
            full_n: 40_000,
            fig12_large: 12_000,
            fig12_small: 1_200,
            sweep_ngs: vec![1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
            sweep_minsups: vec![4, 5, 6],
            cv_folds: 5,
        }
    }
}

impl Scale {
    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            seed: 7,
            random_n: 2_000,
            full_n: 4_000,
            fig12_large: 2_000,
            fig12_small: 200,
            sweep_ngs: vec![2.0, 3.5, 5.0],
            sweep_minsups: vec![4, 5],
            cv_folds: 3,
        }
    }
}

/// Shared expensive artifacts: the Italy set and its tagged standard.
#[derive(Debug)]
pub struct Context {
    pub scale: Scale,
    pub italy: Generated,
    pub standard: TaggedStandard,
}

impl Context {
    /// Generate the Italy set and build the tagged standard (four
    /// MFIBlocks runs plus oracle tagging).
    #[must_use]
    pub fn build(scale: Scale) -> Context {
        let italy = italy_set(scale.seed);
        let standard = build_tagged_standard(&italy, scale.seed ^ 0x5eed);
        Context { scale, italy, standard }
    }
}

/// Run every experiment in paper order.
#[must_use]
pub fn run_all(scale: &Scale) -> Vec<Report> {
    let ctx = Context::build(scale.clone());
    let mut reports = Vec::new();
    reports.extend(data_stats::run(&ctx));
    reports.push(fig8::run(&ctx));
    reports.push(fig12::run(&ctx.scale));
    reports.extend(classifier::run(&ctx));
    reports.extend(sweep::run(&ctx));
    reports.push(conditions::run(&ctx));
    reports.push(blocking_comparison::run(&ctx));
    reports.push(ablation::run(&ctx));
    reports.push(resolve_quality::run(&ctx.scale));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_id_and_notes() {
        let r = Report {
            id: "Table 0".into(),
            title: "Demo".into(),
            body: "x\n".into(),
            notes: "shape holds".into(),
        };
        let s = r.render();
        assert!(s.contains("Table 0"));
        assert!(s.contains("shape holds"));
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = Scale::quick();
        let d = Scale::default();
        assert!(q.full_n < d.full_n);
        assert!(q.sweep_ngs.len() < d.sweep_ngs.len());
    }
}
