//! Figure 12: FP-Growth runtime vs. minsup, with and without
//! frequent-item pruning, at two dataset sizes.
//!
//! The paper plots log(runtime) against minsup ∈ [2, 5] for the 6.5M
//! full set and a 600K sample, each with and without pruning the .03%
//! most frequent items; runtime rises exponentially as minsup falls and
//! roughly linearly with dataset size. We preserve the ~10× size ratio at
//! laptop scale.

use crate::experiments::{Report, Scale};
use crate::table::Table;
use yv_datagen::full_set;
use yv_mfi::{mine_maximal, prune_common_items};
use yv_obs::{Clock, MonotonicClock};

/// One measured series point.
#[derive(Debug, Clone, Copy)]
pub struct RuntimePoint {
    pub n_records: usize,
    pub pruned: bool,
    pub minsup: u64,
    pub seconds: f64,
}

/// Measure all four series. Public so the Criterion bench can reuse it.
///
/// Figure 12 is a runtime study, so the clock is the measurement itself —
/// taken through `yv-obs`'s [`MonotonicClock`], the workspace's one
/// sanctioned wall-clock source.
#[must_use]
pub fn measure(scale: &Scale) -> Vec<RuntimePoint> {
    let clock = MonotonicClock::new();
    let mut points = Vec::new();
    for &n in &[scale.fig12_large, scale.fig12_small] {
        let gen = full_set(n, scale.seed + 3);
        let raw: Vec<Vec<u32>> =
            gen.dataset.bags().iter().map(|b| b.iter().map(|i| i.0).collect()).collect();
        let (pruned_bags, _) = prune_common_items(&raw, 0.05);
        for (pruned, bags) in [(false, &raw), (true, &pruned_bags)] {
            for minsup in [5u64, 4, 3, 2] {
                let t0 = clock.now_nanos();
                let mfis = mine_maximal(bags, minsup);
                let seconds = clock.now_nanos().saturating_sub(t0) as f64 / 1e9;
                // Keep the optimizer honest.
                std::hint::black_box(mfis.len());
                points.push(RuntimePoint { n_records: n, pruned, minsup, seconds });
            }
        }
    }
    points
}

#[must_use]
pub fn run(scale: &Scale) -> Report {
    let points = measure(scale);
    let mut t = Table::new(
        "FP-Growth/FPMax mining runtime (seconds)",
        &["Series", "minsup=5", "minsup=4", "minsup=3", "minsup=2"],
    );
    for &n in &[scale.fig12_large, scale.fig12_small] {
        for pruned in [false, true] {
            let label = format!("{}K{}", n / 1_000, if pruned { ", Prune" } else { "" });
            let cell = |minsup: u64| {
                points
                    .iter()
                    .find(|p| p.n_records == n && p.pruned == pruned && p.minsup == minsup)
                    .map_or("-".to_owned(), |p| format!("{:.3}", p.seconds))
            };
            t.row(vec![label, cell(5), cell(4), cell(3), cell(2)]);
        }
    }
    Report {
        id: "Figure 12".into(),
        title: "Run-time comparison".into(),
        body: t.render(),
        notes: "Shape: runtime increases sharply as minsup decreases, grows \
                roughly linearly with dataset size, and pruning the most \
                frequent items cuts it by an order of magnitude. Sizes are \
                scaled from the paper's 6.5M/600K to laptop scale keeping \
                the ~10x ratio; pruning uses the scale-free record-fraction \
                criterion (see DESIGN.md)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_shapes_hold() {
        let scale = Scale { fig12_large: 1_500, fig12_small: 300, ..Scale::quick() };
        let points = measure(&scale);
        assert_eq!(points.len(), 16);
        // Pruning speeds up minsup=2 mining on the large set.
        let get = |n: usize, pruned: bool, minsup: u64| {
            points
                .iter()
                .find(|p| p.n_records == n && p.pruned == pruned && p.minsup == minsup)
                .expect("point exists")
                .seconds
        };
        assert!(get(1_500, true, 2) <= get(1_500, false, 2));
        // Larger datasets take longer at equal settings (allowing noise at
        // these tiny sizes by comparing the slowest points).
        assert!(get(1_500, false, 2) >= get(300, false, 2) * 0.5);
    }

    #[test]
    fn report_has_four_series() {
        let scale = Scale { fig12_large: 600, fig12_small: 150, ..Scale::quick() };
        let report = run(&scale);
        assert_eq!(report.body.lines().count(), 7); // title + header + rule + 4 series
    }
}
