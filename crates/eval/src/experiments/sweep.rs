//! Figures 15–16: blocking quality by NG × MaxMinSup on the Italy set.

use crate::experiments::{Context, Report};
use crate::metrics::{prf, Prf};
use crate::table::{f3, Table};
use yv_blocking::{mfi_blocks, MfiBlocksConfig};

/// One sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    pub ng: f64,
    pub max_minsup: u64,
    pub quality: Prf,
}

/// Run the sweep; shared by Figures 15 and 16 (and the bench).
#[must_use]
pub fn measure(ctx: &Context) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &max_minsup in &ctx.scale.sweep_minsups {
        for &ng in &ctx.scale.sweep_ngs {
            let config = MfiBlocksConfig::expert_weighting()
                .with_max_minsup(max_minsup)
                .with_ng(ng);
            let result = mfi_blocks(&ctx.italy.dataset, &config);
            let quality = prf(&result.candidate_pairs, &ctx.standard.matched);
            points.push(SweepPoint { ng, max_minsup, quality });
        }
    }
    points
}

/// Build both reports from one sweep.
#[must_use]
pub fn run(ctx: &Context) -> Vec<Report> {
    let points = measure(ctx);
    vec![fig15(ctx, &points), fig16(ctx, &points)]
}

fn header(ctx: &Context, metric: &str) -> Vec<String> {
    let mut h = vec!["NG".to_owned()];
    for &m in &ctx.scale.sweep_minsups {
        h.push(format!("{metric} (MaxMinSup {m})"));
    }
    h
}

fn fig15(ctx: &Context, points: &[SweepPoint]) -> Report {
    let headers = header(ctx, "F-1");
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("F-1 score by NG and MaxMinSup", &headers_ref);
    for &ng in &ctx.scale.sweep_ngs {
        let mut row = vec![format!("{ng:.1}")];
        for &m in &ctx.scale.sweep_minsups {
            let p = points
                .iter()
                .find(|p| p.ng == ng && p.max_minsup == m)
                .expect("sweep covers the grid");
            row.push(f3(p.quality.f1));
        }
        t.row(row);
    }
    Report {
        id: "Figure 15".into(),
        title: "F-1 score By NG and MaxMinSup".into(),
        body: t.render(),
        notes: "Shape: F-1 peaks at intermediate NG (paper: NG≈3-3.5 for \
                MaxMinSup 5-6) and falls off at both extremes."
            .into(),
    }
}

fn fig16(ctx: &Context, points: &[SweepPoint]) -> Report {
    let mut headers = vec!["NG".to_owned()];
    for &m in &ctx.scale.sweep_minsups {
        headers.push(format!("Recall {m}"));
    }
    for &m in &ctx.scale.sweep_minsups {
        headers.push(format!("Precision {m}"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Precision and Recall by NG and MaxMinSup", &headers_ref);
    for &ng in &ctx.scale.sweep_ngs {
        let mut row = vec![format!("{ng:.1}")];
        for &m in &ctx.scale.sweep_minsups {
            let p = points.iter().find(|p| p.ng == ng && p.max_minsup == m).expect("grid");
            row.push(f3(p.quality.recall));
        }
        for &m in &ctx.scale.sweep_minsups {
            let p = points.iter().find(|p| p.ng == ng && p.max_minsup == m).expect("grid");
            row.push(f3(p.quality.precision));
        }
        t.row(row);
    }
    Report {
        id: "Figure 16".into(),
        title: "Precision and Recall By NG and MaxMinSup".into(),
        body: t.render(),
        notes: "Shape: recall rises with NG while precision falls; the \
                preferred operating point (MaxMinSup 5, NG 3-4) favors \
                recall because SameSrc and the classifier filter later."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn recall_trends_upward_in_ng() {
        // Recall is not strictly monotone in NG (the per-iteration record
        // coverage shifts with the surviving blocks — the paper's Figure
        // 16 wobbles too), but the overall trend must rise.
        let ctx = Context::build(Scale::quick());
        let points = measure(&ctx);
        for &m in &ctx.scale.sweep_minsups {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.max_minsup == m)
                .map(|p| p.quality.recall)
                .collect();
            let first = series.first().copied().expect("non-empty sweep");
            let last = series.last().copied().expect("non-empty sweep");
            assert!(
                last >= first - 0.05,
                "loosest NG should not lose much recall vs tightest (minsup {m}): {first} -> {last}"
            );
        }
    }

    #[test]
    fn reports_cover_the_grid() {
        let ctx = Context::build(Scale::quick());
        let reports = run(&ctx);
        assert_eq!(reports.len(), 2);
        for ng in &ctx.scale.sweep_ngs {
            assert!(reports[0].body.contains(&format!("{ng:.1}")));
        }
    }
}
