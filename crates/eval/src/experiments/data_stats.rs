//! Tables 3–4 and Figure 11: the data-statistics experiments of
//! Section 6.2.

use crate::experiments::{Context, Report};
use crate::table::{count, pct, Table};
use yv_datagen::{full_set, random_set};
use yv_records::patterns::{cardinality, prevalence, PatternStats};

/// Run Table 3, Table 4 and Figure 11.
#[must_use]
pub fn run(ctx: &Context) -> Vec<Report> {
    let full = full_set(ctx.scale.full_n, ctx.scale.seed + 1);
    let random = random_set(ctx.scale.random_n, ctx.scale.seed + 2);
    vec![table3(ctx, &full, &random), table4(ctx, &random), fig11(&full)]
}

fn table3(
    ctx: &Context,
    full: &yv_datagen::Generated,
    random: &yv_datagen::Generated,
) -> Report {
    let mut t = Table::new(
        format!(
            "Item type prevalence (full-scaled n={}, Italy n={}, random n={})",
            full.dataset.len(),
            ctx.italy.dataset.len(),
            random.dataset.len()
        ),
        &["Item Type", "Full Records", "Full %", "Italy Records", "Italy %", "Random Records", "Random %"],
    );
    let full_prev = prevalence(&full.dataset);
    let italy_prev = prevalence(&ctx.italy.dataset);
    let random_prev = prevalence(&random.dataset);
    for ((f, i), r) in full_prev.iter().zip(&italy_prev).zip(&random_prev) {
        t.row(vec![
            f.agg.label().to_owned(),
            count(f.records),
            pct(f.fraction),
            count(i.records),
            pct(i.fraction),
            count(r.records),
            pct(r.fraction),
        ]);
    }
    Report {
        id: "Table 3".into(),
        title: "Item Type Prevalence".into(),
        body: t.render(),
        notes: "Shape: names near-universal; DOB ~2/3; family names mid-range; \
                maiden names rare; the Italy subset is richer in father's \
                name and birth place than the general population."
            .into(),
    }
}

fn table4(ctx: &Context, random: &yv_datagen::Generated) -> Report {
    let mut t = Table::new(
        "Item type cardinality",
        &["Item Type", "Italy Items", "Italy Rec/Item", "Random Items", "Random Rec/Item"],
    );
    let italy = cardinality(&ctx.italy.dataset);
    let random_card = cardinality(&random.dataset);
    for (i, r) in italy.iter().zip(&random_card) {
        t.row(vec![
            i.ty.label(),
            count(i.items),
            format!("{:.0}", i.records_per_item),
            count(r.items),
            format!("{:.0}", r.records_per_item),
        ]);
    }
    Report {
        id: "Table 4".into(),
        title: "Item Type Cardinality".into(),
        body: t.render(),
        notes: "Shape: gender has cardinality 2 with enormous records/item; \
                names have high cardinality and low records/item; place \
                parts sit between, coarsening from city to country."
            .into(),
    }
}

fn fig11(full: &yv_datagen::Generated) -> Report {
    let stats = PatternStats::analyze(&full.dataset);
    let buckets = stats.figure11_buckets();
    let mut t = Table::new(
        format!(
            "Data pattern histogram over {} records ({} distinct patterns; most prevalent shared by {}; full-information pattern shared by {})",
            stats.total_records,
            stats.distinct_patterns(),
            stats.most_prevalent().map_or(0, |(_, c)| c),
            stats.full_pattern_records(),
        ),
        &["Records sharing pattern ≤", "# Patterns", "Σ records"],
    );
    for b in buckets {
        let label = if b.upper == u64::MAX { "more".to_owned() } else { b.upper.to_string() };
        t.row(vec![label, count(b.pattern_count), count(b.record_sum)]);
    }
    Report {
        id: "Figure 11".into(),
        title: "Data Pattern Counts".into(),
        body: t.render(),
        notes: "Shape: a long tail of rare patterns coexists with a few \
                dominant patterns covering most records (the paper: 18,567 \
                patterns shared by ≤10 records, while 96 patterns cover \
                4M+ records)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn data_stats_render() {
        let ctx = Context::build(Scale::quick());
        let reports = run(&ctx);
        assert_eq!(reports.len(), 3);
        assert!(reports[0].body.contains("Last Name"));
        assert!(reports[1].body.contains("Gender"));
        assert!(reports[2].body.contains("more"));
        // Prevalence shape: last name near-universal in every set.
        let line = reports[0]
            .body
            .lines()
            .find(|l| l.starts_with("Last Name"))
            .expect("row exists");
        assert!(line.contains("9") && line.contains('%'));
    }
}
