//! Extension ablation (not a paper table): the value of the Names
//! Project's equivalence-class preprocessing.
//!
//! Section 2 credits the expert-curated equivalence classes for the
//! "large yet relatively clean" database every other experiment assumes.
//! This ablation runs identical MFIBlocks configurations over the raw
//! generated records and over the same records with the generator's
//! equivalence dictionary applied, quantifying what the preprocessing
//! buys.

use crate::experiments::{Context, Report};
use crate::metrics::{prf, Prf};
use crate::table::{f3, Table};
use std::collections::HashSet;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::{canonicalized_dataset, equivalence_classes};
use yv_records::RecordId;

/// Quality of one arm of the ablation.
#[derive(Debug, Clone, Copy)]
pub struct AblationArm {
    pub preprocessed: bool,
    pub vocabulary: usize,
    pub quality: Prf,
}

/// Measure both arms against the generator's complete ground truth (not
/// the tagged standard: preprocessing changes what the standard itself
/// would contain, so the comparison needs a fixed referee).
#[must_use]
pub fn measure(ctx: &Context) -> Vec<AblationArm> {
    let gold: HashSet<(RecordId, RecordId)> =
        ctx.italy.matching_pairs().into_iter().collect();
    let config = MfiBlocksConfig::expert_weighting();
    let eq = equivalence_classes();
    let canon = canonicalized_dataset(&ctx.italy.dataset, &eq);

    [false, true]
        .into_iter()
        .map(|preprocessed| {
            let ds = if preprocessed { &canon } else { &ctx.italy.dataset };
            let result = mfi_blocks(ds, &config);
            AblationArm {
                preprocessed,
                vocabulary: ds.interner().len(),
                quality: prf(&result.candidate_pairs, &gold),
            }
        })
        .collect()
}

#[must_use]
pub fn run(ctx: &Context) -> Report {
    let arms = measure(ctx);
    let mut t = Table::new(
        "Equivalence-class preprocessing ablation (vs. complete ground truth)",
        &["Arm", "Vocabulary", "Recall", "Precision", "F-1"],
    );
    for arm in &arms {
        t.row(vec![
            if arm.preprocessed { "With equivalence classes" } else { "Raw records" }.into(),
            arm.vocabulary.to_string(),
            f3(arm.quality.recall),
            f3(arm.quality.precision),
            f3(arm.quality.f1),
        ]);
    }
    Report {
        id: "Ablation (extension)".into(),
        title: "Equivalence-class preprocessing".into(),
        body: t.render(),
        notes: "Extension beyond the paper's tables: quantifies the Section 2 \
                claim that the experts' equivalence-class preprocessing is \
                what makes the database 'relatively clean'. Applying the \
                dictionary shrinks the item vocabulary and recovers matches \
                whose only divergence is a transliteration variant."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn preprocessing_shrinks_vocabulary_and_keeps_recall() {
        let ctx = Context::build(Scale::quick());
        let arms = measure(&ctx);
        assert_eq!(arms.len(), 2);
        let raw = arms.iter().find(|a| !a.preprocessed).unwrap();
        let clean = arms.iter().find(|a| a.preprocessed).unwrap();
        assert!(clean.vocabulary < raw.vocabulary);
        assert!(clean.quality.recall >= raw.quality.recall - 0.03);
    }
}
