//! Table 9: quality under the varying conditions of Section 6.5, averaged
//! over NG ∈ {3, 3.5, 4} with MaxMinSup = 5.

use crate::experiments::{Context, Report};
use crate::metrics::{prf, Prf};
use crate::table::{f3, Table};
use yv_blocking::mfi_blocks;
use yv_core::{Condition, Pipeline, PipelineConfig};
use yv_records::RecordId;

/// Quality of one condition averaged over the NG values.
#[derive(Debug, Clone, Copy)]
pub struct ConditionQuality {
    pub condition: Condition,
    pub quality: Prf,
}

/// Measure all six conditions (shared with the bench).
#[must_use]
pub fn measure(ctx: &Context) -> Vec<ConditionQuality> {
    let ngs = [3.0, 3.5, 4.0];
    // The classifier used by the Cls conditions is trained once on the
    // tagged standard with Maybe omitted, as in Section 6.4's preferred
    // policy.
    let labelled: Vec<(RecordId, RecordId, bool)> = ctx
        .standard
        .pairs
        .iter()
        .filter_map(|p| p.simplified().map(|m| (p.a, p.b, m)))
        .collect();
    let pipeline = Pipeline::train(&ctx.italy.dataset, &labelled, &PipelineConfig::default());

    Condition::ALL
        .iter()
        .map(|&condition| {
            let mut acc = Prf::default();
            for &ng in &ngs {
                let blocking = condition.blocking().with_max_minsup(5).with_ng(ng);
                let result = mfi_blocks(&ctx.italy.dataset, &blocking);
                let mut pairs = result.candidate_pairs;
                if condition.same_src() {
                    pairs.retain(|&(a, b)| !ctx.italy.dataset.same_source(a, b));
                }
                if condition.classify() {
                    pairs.retain(|&(a, b)| {
                        pipeline.score_pair(&ctx.italy.dataset, a, b) > 0.0
                    });
                }
                let q = prf(&pairs, &ctx.standard.matched);
                acc.precision += q.precision;
                acc.recall += q.recall;
                acc.f1 += q.f1;
            }
            let n = ngs.len() as f64;
            ConditionQuality {
                condition,
                quality: Prf {
                    precision: acc.precision / n,
                    recall: acc.recall / n,
                    f1: acc.f1 / n,
                },
            }
        })
        .collect()
}

#[must_use]
pub fn run(ctx: &Context) -> Report {
    let results = measure(ctx);
    let mut t = Table::new(
        "Quality under varying conditions (avg over NG ∈ {3, 3.5, 4}, MaxMinSup = 5)",
        &["Condition", "Recall", "Precision", "F-1"],
    );
    for r in &results {
        t.row(vec![
            r.condition.label().to_owned(),
            f3(r.quality.recall),
            f3(r.quality.precision),
            f3(r.quality.f1),
        ]);
    }
    Report {
        id: "Table 9".into(),
        title: "Quality under Varying Conditions".into(),
        body: t.render(),
        notes: "Shape: expert weighting boosts recall at a small precision \
                cost; the hand-crafted ExpertSim block score hurts both \
                (set-monotonicity loss); SameSrc and Cls trade recall for \
                precision; SameSrc + Cls attains the best F-1 (paper: \
                0.279 -> 0.427)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn table9_shapes_hold() {
        let ctx = Context::build(Scale::quick());
        let results = measure(&ctx);
        let get = |c: Condition| {
            results.iter().find(|r| r.condition == c).expect("all conditions measured").quality
        };
        let base = get(Condition::Base);
        let same_src = get(Condition::SameSrc);
        let cls = get(Condition::Cls);
        let both = get(Condition::SameSrcCls);
        // Filters raise precision relative to their unfiltered blocking
        // (expert weighting), and cost recall.
        let ew = get(Condition::ExpertWeighting);
        assert!(same_src.precision >= ew.precision);
        assert!(cls.precision >= ew.precision);
        assert!(same_src.recall <= ew.recall + 1e-9);
        // The combined condition has the highest precision of the filters.
        assert!(both.precision >= same_src.precision - 1e-9);
        assert!(both.precision >= base.precision * 0.8);
    }
}
