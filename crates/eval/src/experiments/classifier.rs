//! Tables 5–8: ADT classifier quality and the printed models.
//!
//! * Table 5 — accuracy under the three Maybe-handling policies;
//! * Table 6 — accuracy with and without the MV submitter's records;
//! * Tables 7–8 — the learned models themselves, rendered Weka-style.

use crate::experiments::{Context, Report};
use crate::table::{f3, Table};
use std::collections::HashSet;
use yv_adt::train::accuracy as train_accuracy;
use yv_adt::{render::render, train, TrainConfig, TrainSet};
use yv_core::build_train_set;
use yv_datagen::ExpertTag;
use yv_records::RecordId;
use yv_similarity::FEATURES;

#[must_use]
pub fn run(ctx: &Context) -> Vec<Report> {
    vec![table5(ctx), table6(ctx), table7(ctx), table8(ctx)]
}

/// Labelled pairs under a Maybe policy: Maybe pairs become negatives when
/// `maybe_as_no`, otherwise they are omitted.
fn labelled_pairs(
    standard: &crate::goldstandard::TaggedStandard,
    maybe_as_no: bool,
) -> Vec<(RecordId, RecordId, bool)> {
    standard
        .pairs
        .iter()
        .filter_map(|p| match (p.simplified(), maybe_as_no) {
            (Some(label), _) => Some((p.a, p.b, label)),
            (None, true) => Some((p.a, p.b, false)),
            (None, false) => None,
        })
        .collect()
}

/// k-fold cross-validated accuracy of the binary ADT.
fn cv_accuracy(ts: &TrainSet, folds: usize) -> f64 {
    let config = TrainConfig::default();
    let mut total = 0.0;
    for fold in 0..folds {
        let (train_set, test_set) = ts.fold(folds, fold);
        let tree = train(&train_set, &config);
        total += train_accuracy(&tree, &test_set);
    }
    total / folds as f64
}

fn table5(ctx: &Context) -> Report {
    let folds = ctx.scale.cv_folds;
    let mut t = Table::new(
        "Classifier quality under Maybe-handling policies (cross-validated)",
        &["Condition", "N", "Accuracy"],
    );

    // Maybe := No.
    let as_no = labelled_pairs(&ctx.standard, true);
    let ts_no = build_train_set(&ctx.italy.dataset, &as_no);
    t.row(vec!["Maybe:=No".into(), as_no.len().to_string(), f3(cv_accuracy(&ts_no, folds))]);

    // Maybe values omitted.
    let omitted = labelled_pairs(&ctx.standard, false);
    let ts_omit = build_train_set(&ctx.italy.dataset, &omitted);
    t.row(vec![
        "Maybe values omitted".into(),
        omitted.len().to_string(),
        f3(cv_accuracy(&ts_omit, folds)),
    ]);

    // Identify Maybe values: a three-class scheme — one tree detects
    // Maybe, a second decides match/non-match for the rest.
    t.row(vec![
        "Identify Maybe values".into(),
        ctx.standard.pairs.len().to_string(),
        f3(three_class_cv(ctx, folds)),
    ]);

    Report {
        id: "Table 5".into(),
        title: "Classifier Quality - Maybe values".into(),
        body: t.render(),
        notes: "Shape: accuracy stable around the mid-90s under all three \
                policies, with a slight edge for omitting Maybe pairs \
                (paper: 94.2% / 96.4% / 95.1%)."
            .into(),
    }
}

fn three_class_cv(ctx: &Context, folds: usize) -> f64 {
    // Instances: every tagged pair; labels: 0=No, 1=Yes, 2=Maybe.
    let all: Vec<(RecordId, RecordId, u8)> = ctx
        .standard
        .pairs
        .iter()
        .map(|p| {
            let label = match p.tag {
                ExpertTag::Yes | ExpertTag::ProbablyYes => 1,
                ExpertTag::Maybe => 2,
                _ => 0,
            };
            (p.a, p.b, label)
        })
        .collect();
    let maybe_set: Vec<(RecordId, RecordId, bool)> =
        all.iter().map(|&(a, b, l)| (a, b, l == 2)).collect();
    let ts_maybe = build_train_set(&ctx.italy.dataset, &maybe_set);
    let match_pairs: Vec<(RecordId, RecordId, bool)> =
        all.iter().filter(|&&(_, _, l)| l != 2).map(|&(a, b, l)| (a, b, l == 1)).collect();
    let ts_match = build_train_set(&ctx.italy.dataset, &match_pairs);

    let config = TrainConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    for fold in 0..folds {
        let (maybe_train, _) = ts_maybe.fold(folds, fold);
        let (match_train, _) = ts_match.fold(folds, fold);
        let maybe_tree = train(&maybe_train, &config);
        let match_tree = train(&match_train, &config);
        // Evaluate on the held-out slice of `all` (every folds-th pair).
        for (i, &(a, b, truth)) in all.iter().enumerate() {
            if i % folds != fold {
                continue;
            }
            let fv = yv_similarity::extract(ctx.italy.dataset.record(a), ctx.italy.dataset.record(b));
            let row: Vec<Option<f64>> =
                (0..yv_similarity::FEATURE_COUNT).map(|k| fv.get(k)).collect();
            let predicted = if maybe_tree.classify(&row) {
                2
            } else if match_tree.classify(&row) {
                1
            } else {
                0
            };
            total += 1;
            if predicted == truth {
                correct += 1;
            }
        }
    }
    correct as f64 / total.max(1) as f64
}

fn mv_record_set(ctx: &Context) -> HashSet<RecordId> {
    ctx.italy.mv_records().into_iter().collect()
}

fn table6(ctx: &Context) -> Report {
    let folds = ctx.scale.cv_folds;
    let mut t = Table::new(
        "Classifier quality with and without the MV submitter",
        &["Condition", "N", "Accuracy"],
    );
    let with_mv = labelled_pairs(&ctx.standard, false);
    let ts_with = build_train_set(&ctx.italy.dataset, &with_mv);
    t.row(vec![
        "With MV".into(),
        with_mv.len().to_string(),
        f3(cv_accuracy(&ts_with, folds)),
    ]);
    let reduced = ctx.standard.without_records(&mv_record_set(ctx));
    let without_mv = labelled_pairs(&reduced, false);
    let ts_without = build_train_set(&ctx.italy.dataset, &without_mv);
    t.row(vec![
        "Without MV".into(),
        without_mv.len().to_string(),
        f3(cv_accuracy(&ts_without, folds)),
    ]);
    Report {
        id: "Table 6".into(),
        title: "Classifier Quality - MV source".into(),
        body: t.render(),
        notes: "Paper: 96.5% with MV vs 94.2% without (single split). Under \
                our cleaner oracle-tag regime and cross-validation the MV \
                removal effect is within noise — the training set shrinks \
                by ~25% but the remaining pairs carry the same signal. The \
                phenomenon itself (one submitter, 1,400 fixed-pattern \
                accurate reports) is reproduced and visible in N."
            .into(),
    }
}

fn rendered_model(ctx: &Context, without_mv: bool) -> (String, usize) {
    let standard = if without_mv {
        ctx.standard.without_records(&mv_record_set(ctx))
    } else {
        ctx.standard.clone()
    };
    let labelled = labelled_pairs(&standard, false);
    let ts = build_train_set(&ctx.italy.dataset, &labelled);
    let tree = train(&ts, &TrainConfig::default());
    let text = render(&tree, &|f| FEATURES[f].name.to_owned());
    (text, tree.features_used().len())
}

fn table7(ctx: &Context) -> Report {
    let (text, used) = rendered_model(ctx, false);
    Report {
        id: "Table 7".into(),
        title: "Full dataset ADT model".into(),
        body: text,
        notes: format!(
            "The learned model uses {used} of the 48 features (paper: 8-10), \
             leaning on name-agreement and name-distance splits."
        ),
    }
}

fn table8(ctx: &Context) -> Report {
    let (text, used) = rendered_model(ctx, true);
    Report {
        id: "Table 8".into(),
        title: "ADT model without MV records".into(),
        body: text,
        notes: format!(
            "Without the MV submitter the model keeps {used} features. The \
             paper observed the root shifting from father-name to \
             first-name evidence; our oracle-tagged regime yields milder \
             re-weighting (compare the FFNdist prediction values with \
             Table 7)."
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn classifier_experiments_run() {
        let ctx = Context::build(Scale::quick());
        let reports = run(&ctx);
        assert_eq!(reports.len(), 4);
        // Table 5: all three accuracies present and high.
        for line in reports[0].body.lines().skip(3) {
            let acc: f64 = line
                .split_whitespace()
                .last()
                .and_then(|s| s.parse().ok())
                .expect("accuracy cell");
            assert!(acc > 0.75, "accuracy too low in: {line}");
        }
        // Tables 7/8 are rendered trees.
        assert!(reports[2].body.starts_with(": "));
        assert!(reports[3].body.contains("<"));
    }
}
