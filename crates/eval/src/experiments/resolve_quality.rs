//! Fuzzy-resolution quality: blend-weight sweep of the `yv-fuzzy`
//! ranked resolver against datagen gold.
//!
//! The deployment section's use case — a searcher types a half-remembered,
//! possibly misspelled name and expects the person behind it near the top
//! of the list — has no table in the paper, but it is the property the
//! RESOLVE command exists for. This experiment perturbs corpus surnames
//! with datagen's single-edit clerical errors, runs each typo through the
//! q-gram candidate index and the blended ranker, and scores how often the
//! true name's entities land at rank 1 / within the top 5, plus the mean
//! reciprocal ranks at both the name and the gold-person level — once per
//! blend weighting, so the default blend's place in the trade-off space is
//! visible rather than asserted.

use crate::experiments::{Report, Scale};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yv_core::{Pipeline, PipelineConfig};
use yv_datagen::{corrupt::clerical_error, tag_pairs, GenConfig};
use yv_fuzzy::{rank_entities, FuzzyIndex, ScoreBlend, DEFAULT_QGRAM_BOUND};
use yv_records::RecordId;

/// Quality of one blend weighting over the full typo battery.
///
/// `recall_at_1` / `recall_at_5` / `mrr` are **name-level**: the rank of
/// the first entity carrying the true (unperturbed) surname. That is the
/// property a typo can break and the fuzzy index exists to restore. A
/// bare surname cannot distinguish the 7–16 distinct persons who
/// legitimately share it in the corpus, so person-level quality is
/// reported separately as `person_mrr` — the reciprocal rank of the gold
/// person's own entity — rather than folded into the recall floor.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub label: String,
    pub blend: ScoreBlend,
    pub queries: usize,
    pub recall_at_1: f64,
    pub recall_at_5: f64,
    pub mrr: f64,
    pub person_mrr: f64,
}

/// The swept blend weightings: each similarity signal alone, the default,
/// and an evidence-heavy variant that overweights report count and
/// resolver certainty.
#[must_use]
pub fn blends() -> Vec<(String, ScoreBlend)> {
    vec![
        (
            "jw-only".to_owned(),
            ScoreBlend { name_weight: 1.0, qgram_weight: 0.0, prior_weight: 0.0, certainty_weight: 0.0 },
        ),
        (
            "qgram-only".to_owned(),
            ScoreBlend { name_weight: 0.0, qgram_weight: 1.0, prior_weight: 0.0, certainty_weight: 0.0 },
        ),
        (
            "jw+qgram".to_owned(),
            ScoreBlend { name_weight: 0.6, qgram_weight: 0.4, prior_weight: 0.0, certainty_weight: 0.0 },
        ),
        ("default".to_owned(), ScoreBlend::default()),
        (
            "heavy-prior".to_owned(),
            ScoreBlend { name_weight: 0.2, qgram_weight: 0.1, prior_weight: 0.4, certainty_weight: 0.3 },
        ),
    ]
}

/// Run the sweep. Public so tests can assert on the numbers directly.
#[must_use]
pub fn measure(scale: &Scale) -> Vec<SweepPoint> {
    // A dedicated corpus sized between quick and full scale: big enough
    // for surname collisions to matter, small enough to train in-process.
    let n = (scale.random_n / 4).clamp(400, 5_000);
    let gen = GenConfig::random(n, scale.seed + 11).generate();
    let ds = &gen.dataset;
    let config = PipelineConfig::default();
    let blocked = yv_blocking::mfi_blocks(ds, &config.blocking);
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 1);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(ds, &labelled, &config);
    let resolution = pipeline.resolve(ds, &config);
    let entity_map = resolution.entity_map(0.0);

    // Per-record certainty: the best incident match score, as the store
    // feeds the ranker.
    let mut certainty = vec![0.0f64; ds.len()];
    for m in &resolution.matches {
        for rid in [m.a, m.b] {
            let slot = &mut certainty[rid.index()];
            *slot = slot.max(m.score);
        }
    }

    let mut index = FuzzyIndex::new();
    for rid in ds.record_ids() {
        index.add_record(rid, ds.record(rid));
    }

    // The typo battery: every stride-th record's first surname through
    // datagen's clerical-error channel (substitute / delete / duplicate —
    // at most one edit). Each query remembers the true surname (the
    // name-level gold) and the probed record (the person-level gold).
    let target_queries = 200usize.min(n / 2);
    let stride = (n / target_queries).max(1);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x0f22);
    let queries: Vec<(String, String, RecordId)> = (0..ds.len())
        .step_by(stride)
        .filter_map(|i| {
            let rid = RecordId(u32::try_from(i).unwrap_or(0));
            let last = ds.record(rid).last_names.first()?;
            Some((clerical_error(&mut rng, last).to_lowercase(), last.to_lowercase(), rid))
        })
        .collect();

    let entity_of = |rid: RecordId| {
        entity_map.entity_of(rid).map_or_else(|| vec![rid], <[RecordId]>::to_vec)
    };
    let certainty_of = |rid: RecordId| certainty.get(rid.index()).copied().unwrap_or(0.0);

    blends()
        .into_iter()
        .map(|(label, blend)| {
            let (mut hits1, mut hits5, mut mrr, mut person_mrr) =
                (0usize, 0usize, 0.0f64, 0.0f64);
            for (query, true_name, gold_rid) in &queries {
                let gold_person = gen.person_of(*gold_rid);
                let (cands, _) = index.candidates(query, DEFAULT_QGRAM_BOUND);
                let ranked = rank_entities(
                    query,
                    cands.iter().map(|c| (c.name, c.jaccard, c.records)),
                    entity_of,
                    certainty_of,
                    &blend,
                    usize::MAX,
                    f64::NEG_INFINITY,
                );
                if let Some(pos) = ranked.iter().position(|e| e.name == *true_name) {
                    hits1 += usize::from(pos == 0);
                    hits5 += usize::from(pos < 5);
                    mrr += 1.0 / (pos + 1) as f64;
                }
                if let Some(pos) = ranked.iter().position(|e| {
                    e.members.iter().any(|&r| gen.person_of(r) == gold_person)
                }) {
                    person_mrr += 1.0 / (pos + 1) as f64;
                }
            }
            let q = queries.len().max(1) as f64;
            SweepPoint {
                label,
                blend,
                queries: queries.len(),
                recall_at_1: hits1 as f64 / q,
                recall_at_5: hits5 as f64 / q,
                mrr: mrr / q,
                person_mrr: person_mrr / q,
            }
        })
        .collect()
}

#[must_use]
pub fn run(scale: &Scale) -> Report {
    let points = measure(scale);
    let queries = points.first().map_or(0, |p| p.queries);
    let mut t = Table::new(
        format!("RESOLVE blend sweep ({queries} single-edit typo queries)"),
        &["Blend", "name/qgram/prior/cert", "recall@1", "recall@5", "MRR", "person-MRR"],
    );
    for p in &points {
        t.row(vec![
            p.label.clone(),
            format!(
                "{:.2}/{:.2}/{:.2}/{:.2}",
                p.blend.name_weight, p.blend.qgram_weight, p.blend.prior_weight,
                p.blend.certainty_weight
            ),
            format!("{:.3}", p.recall_at_1),
            format!("{:.3}", p.recall_at_5),
            format!("{:.3}", p.mrr),
            format!("{:.3}", p.person_mrr),
        ]);
    }
    Report {
        id: "Table F1".into(),
        title: "Fuzzy resolution quality vs blend weights".into(),
        body: t.render(),
        notes: "Shape: name-similarity signals dominate — the default blend \
                keeps name-level recall@5 at or above 0.9 on single-edit \
                typos (the true surname's entities reach the top of the \
                list), while the evidence-heavy weighting trades top-1 \
                precision for recall of well-attested entities. person-MRR \
                is context: a bare surname query cannot distinguish the many \
                distinct persons who legitimately share it. Not a paper \
                artifact; this table backs the store's RESOLVE command \
                (DESIGN.md section 12)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_blend_meets_the_recall_floor() {
        let points = measure(&Scale::quick());
        let default = points.iter().find(|p| p.label == "default").expect("default is swept");
        assert!(default.queries >= 100, "{default:?}");
        assert!(
            default.recall_at_5 >= 0.9,
            "single-edit typos must keep the true name in the top 5: {default:?}"
        );
        assert!(default.mrr >= default.recall_at_1, "MRR bounds recall@1: {default:?}");
        assert!(default.person_mrr > 0.0, "{default:?}");
        for p in &points {
            assert!(p.recall_at_1 <= p.recall_at_5, "{p:?}");
            assert!((0.0..=1.0).contains(&p.mrr), "{p:?}");
            assert!((0.0..=1.0).contains(&p.person_mrr), "{p:?}");
        }
    }

    #[test]
    fn report_has_one_row_per_blend() {
        let report = run(&Scale::quick());
        // title + header + rule + five blend rows
        assert_eq!(report.body.lines().count(), 8, "{}", report.body);
        assert!(report.body.contains("default"));
        assert!(report.body.contains("heavy-prior"));
    }
}
