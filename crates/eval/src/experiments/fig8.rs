//! Figure 8: expert-tag proportion per similarity bin.
//!
//! The paper examined, for similarity bins 0.1–1.0, what fraction of the
//! tagged candidate pairs carry each of the five expert tags — validating
//! that high-similarity pairs are tagged Yes and low-similarity pairs No,
//! with Maybe concentrated in the murky middle.

use crate::experiments::{Context, Report};
use crate::table::{pct, Table};
use yv_datagen::ExpertTag;
use yv_similarity::jaccard::jaccard_sorted;

/// Pair similarity used for binning: Jaccard of the records' item bags —
/// the similarity the tagging application sorted by.
fn pair_similarity(ds: &yv_records::Dataset, a: yv_records::RecordId, b: yv_records::RecordId) -> f64 {
    let ba: Vec<u32> = ds.bag(a).iter().map(|i| i.0).collect();
    let bb: Vec<u32> = ds.bag(b).iter().map(|i| i.0).collect();
    jaccard_sorted(&ba, &bb)
}

#[must_use]
pub fn run(ctx: &Context) -> Report {
    // counts[bin][tag]
    let mut counts = [[0u64; 5]; 10];
    for pair in &ctx.standard.pairs {
        let sim = pair_similarity(&ctx.italy.dataset, pair.a, pair.b);
        let bin = ((sim * 10.0).ceil() as usize).clamp(1, 10) - 1;
        let tag_idx = ExpertTag::ALL.iter().position(|&t| t == pair.tag).expect("known tag");
        counts[bin][tag_idx] += 1;
    }
    let mut t = Table::new(
        format!("Tag proportion by similarity bin over {} tagged pairs", ctx.standard.pairs.len()),
        &["Similarity ≤", "Yes", "Probably Yes", "Maybe", "Probably No", "No", "Pairs"],
    );
    for (bin, row) in counts.iter().enumerate() {
        let total: u64 = row.iter().sum();
        let p = |i: usize| {
            if total == 0 {
                "-".to_owned()
            } else {
                pct(row[i] as f64 / total as f64)
            }
        };
        t.row(vec![
            format!("{:.1}", (bin + 1) as f64 / 10.0),
            p(0),
            p(1),
            p(2),
            p(3),
            p(4),
            total.to_string(),
        ]);
    }
    Report {
        id: "Figure 8".into(),
        title: "Tag-Similarity Comparison".into(),
        body: t.render(),
        notes: "Shape: the Yes share rises monotonically with similarity and \
                dominates the top bins; No dominates the bottom bins; Maybe \
                concentrates in the middle. Aberrations (low-similarity Yes) \
                were what the paper used to debug its similarity function."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn yes_share_rises_with_similarity() {
        let ctx = Context::build(Scale::quick());
        // Recompute the proportions directly rather than parsing the table.
        let mut yes = [0u64; 10];
        let mut total = [0u64; 10];
        for pair in &ctx.standard.pairs {
            let sim = pair_similarity(&ctx.italy.dataset, pair.a, pair.b);
            let bin = ((sim * 10.0).ceil() as usize).clamp(1, 10) - 1;
            total[bin] += 1;
            if pair.tag == ExpertTag::Yes {
                yes[bin] += 1;
            }
        }
        let share = |lo: usize, hi: usize| {
            let y: u64 = yes[lo..hi].iter().sum();
            let t: u64 = total[lo..hi].iter().sum();
            if t == 0 {
                0.0
            } else {
                y as f64 / t as f64
            }
        };
        let low = share(0, 4);
        let high = share(6, 10);
        assert!(
            high > low,
            "Yes share must rise with similarity: low bins {low:.2}, high bins {high:.2}"
        );
        let report = run(&ctx);
        assert!(report.body.contains("0.5"));
    }
}
