//! Table 10: comparative quality of blocking techniques on the Italy set.
//!
//! MFIBlocks is compared without classification (to avoid giving it an
//! unfair comparison-cleaning advantage) against the ten baselines under
//! their default configurations.

use crate::experiments::{Context, Report};
use crate::metrics::prf;
use crate::table::{f3, Table};
use yv_baselines::{all_baselines, pair_stats};
use yv_blocking::{mfi_blocks, MfiBlocksConfig};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    pub name: String,
    pub recall: f64,
    pub precision: f64,
}

/// Measure MFIBlocks plus every baseline (shared with the bench).
#[must_use]
pub fn measure(ctx: &Context) -> Vec<ComparisonRow> {
    let gold = &ctx.standard.matched;
    let n = ctx.italy.dataset.len();
    let mut rows = Vec::new();

    let result = mfi_blocks(&ctx.italy.dataset, &MfiBlocksConfig::base());
    let q = prf(&result.candidate_pairs, gold);
    rows.push(ComparisonRow {
        name: "MFIBlocks".into(),
        recall: q.recall,
        precision: q.precision,
    });

    for blocker in all_baselines() {
        let blocks = blocker.blocks(&ctx.italy.dataset);
        let stats = pair_stats(&blocks, n, &|a, b| gold.contains(&(a, b)));
        rows.push(ComparisonRow {
            name: blocker.name().to_owned(),
            recall: stats.recall(gold.len() as u64),
            precision: stats.precision(),
        });
    }
    rows
}

#[must_use]
pub fn run(ctx: &Context) -> Report {
    let rows = measure(ctx);
    let mut t = Table::new(
        "Comparative analysis of blocking techniques on the Italy set",
        &["Blocking Algorithm", "Recall", "Precision"],
    );
    for r in &rows {
        let precision = if r.precision < 0.001 && r.precision > 0.0 {
            "< 0.001".to_owned()
        } else {
            f3(r.precision)
        };
        t.row(vec![r.name.clone(), f3(r.recall), precision]);
    }
    Report {
        id: "Table 10".into(),
        title: "Comparative analysis of Blocking Techniques on Italy dataset".into(),
        body: t.render(),
        notes: "Shape: the token/q-gram/window baselines reach recall ≈ 1 at \
                precision orders of magnitude below MFIBlocks, which trades \
                ~0.77 recall for precision two orders of magnitude higher; \
                the suffix-array variants and TYPiMatch land between."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn mfiblocks_dominates_precision() {
        let ctx = Context::build(Scale::quick());
        let rows = measure(&ctx);
        assert_eq!(rows.len(), 11);
        let mfi = &rows[0];
        assert_eq!(mfi.name, "MFIBlocks");
        // Token blocking reaches (near-)total recall on its own standard.
        let stbl = rows.iter().find(|r| r.name == "StBl").expect("StBl row");
        assert!(stbl.recall > 0.95, "StBl recall {}", stbl.recall);
        // ...at far lower precision than MFIBlocks.
        assert!(
            mfi.precision > stbl.precision * 10.0,
            "MFIBlocks {} vs StBl {}",
            mfi.precision,
            stbl.precision
        );
    }
}
