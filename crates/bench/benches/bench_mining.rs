//! Figure 12 bench: FP-Growth/FPMax mining runtime vs. minsup and dataset
//! size, with and without frequent-item pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use yv_datagen::full_set;
use yv_mfi::{mine_maximal, prune_common_items};

fn bags_of(n: usize, prune: bool) -> Vec<Vec<u32>> {
    let gen = full_set(n, 42);
    let raw: Vec<Vec<u32>> =
        gen.dataset.bags().iter().map(|b| b.iter().map(|i| i.0).collect()).collect();
    if prune {
        prune_common_items(&raw, 0.05).0
    } else {
        raw
    }
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_mining");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        for prune in [false, true] {
            let bags = bags_of(n, prune);
            for minsup in [5u64, 3, 2] {
                let label = format!("n={n}{}", if prune { ",prune" } else { "" });
                group.bench_with_input(
                    BenchmarkId::new(label, minsup),
                    &minsup,
                    |b, &minsup| b.iter(|| black_box(mine_maximal(&bags, minsup))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
