//! Tables 3–4 / Figure 11 bench: the data-statistics passes (prevalence,
//! cardinality, pattern analysis) plus dataset generation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yv_datagen::{random_set, GenConfig};
use yv_records::patterns::{cardinality, prevalence, PatternStats};

fn bench_data_stats(c: &mut Criterion) {
    let gen = random_set(5_000, 42);

    c.bench_function("table3_prevalence_5k", |b| {
        b.iter(|| black_box(prevalence(&gen.dataset)))
    });
    c.bench_function("table4_cardinality_5k", |b| {
        b.iter(|| black_box(cardinality(&gen.dataset)))
    });
    c.bench_function("fig11_pattern_analysis_5k", |b| {
        b.iter(|| black_box(PatternStats::analyze(&gen.dataset)))
    });

    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("generate_5k_records", |b| {
        b.iter(|| black_box(GenConfig::random(5_000, 42).generate()))
    });
    group.finish();
}

criterion_group!(benches, bench_data_stats);
criterion_main!(benches);
