//! Tables 5–8 bench: feature extraction throughput, ADT training, and
//! scoring — the classifier half of the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yv_adt::{train, TrainConfig};
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_core::build_train_set;
use yv_datagen::{random_set, tag_pairs};
use yv_records::RecordId;
use yv_similarity::extract;

fn bench_classifier(c: &mut Criterion) {
    let gen = random_set(2_000, 42);
    let blocked = mfi_blocks(&gen.dataset, &MfiBlocksConfig::default());
    let tags = tag_pairs(&gen, &blocked.candidate_pairs, 1);
    let labelled: Vec<(RecordId, RecordId, bool)> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();

    c.bench_function("table5_feature_extraction_1k_pairs", |b| {
        b.iter(|| {
            for &(x, y, _) in labelled.iter().take(1_000) {
                black_box(extract(gen.dataset.record(x), gen.dataset.record(y)));
            }
        })
    });

    let ts = build_train_set(&gen.dataset, &labelled);
    let mut group = c.benchmark_group("table5_adt_training");
    group.sample_size(10);
    group.bench_function("train_10_rounds", |b| {
        b.iter(|| black_box(train(&ts, &TrainConfig::default())))
    });
    group.finish();

    let tree = train(&ts, &TrainConfig::default());
    let rows: Vec<Vec<Option<f64>>> = (0..ts.len()).map(|i| ts.row(i).to_vec()).collect();
    c.bench_function("table5_adt_scoring_all_pairs", |b| {
        b.iter(|| {
            for row in &rows {
                black_box(tree.score(row));
            }
        })
    });
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
