//! Table 10 bench: every baseline blocker plus MFIBlocks on the same
//! dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yv_baselines::all_baselines;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::random_set;

fn bench_table10(c: &mut Criterion) {
    let gen = random_set(1_500, 42);
    let mut group = c.benchmark_group("table10_blockers");
    group.sample_size(10);
    group.bench_function("MFIBlocks", |b| {
        b.iter(|| black_box(mfi_blocks(&gen.dataset, &MfiBlocksConfig::base())))
    });
    for blocker in all_baselines() {
        group.bench_function(blocker.name(), |b| {
            b.iter(|| black_box(blocker.blocks(&gen.dataset)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table10);
criterion_main!(benches);
