//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * interned `u32` item bags vs. string bags for pair similarity;
//! * the minsup-descent loop vs. a single minsup = 2 pass;
//! * frequent-item pruning on vs. off inside full MFIBlocks;
//! * direct maximal mining vs. mine-all-then-filter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::random_set;
use yv_mfi::{mine_frequent, mine_maximal};
use yv_similarity::jaccard::{jaccard_sets, jaccard_sorted};

fn bench_interning(c: &mut Criterion) {
    let gen = random_set(1_000, 42);
    let int_bags: Vec<Vec<u32>> =
        gen.dataset.bags().iter().map(|b| b.iter().map(|i| i.0).collect()).collect();
    let str_bags: Vec<Vec<String>> = gen
        .dataset
        .bags()
        .iter()
        .map(|b| b.iter().map(|&i| gen.dataset.interner().display(i)).collect())
        .collect();
    let pairs: Vec<(usize, usize)> =
        (0..500).map(|i| (i % int_bags.len(), (i * 7 + 1) % int_bags.len())).collect();

    let mut group = c.benchmark_group("ablation_interning");
    group.bench_function("interned_u32_jaccard", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                black_box(jaccard_sorted(&int_bags[x], &int_bags[y]));
            }
        })
    });
    group.bench_function("string_jaccard", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                black_box(jaccard_sets(&str_bags[x], &str_bags[y]));
            }
        })
    });
    group.finish();
}

fn bench_minsup_descent(c: &mut Criterion) {
    let gen = random_set(1_500, 42);
    let mut group = c.benchmark_group("ablation_minsup_descent");
    group.sample_size(10);
    group.bench_function("descent_5_to_2", |b| {
        b.iter(|| black_box(mfi_blocks(&gen.dataset, &MfiBlocksConfig::default())))
    });
    group.bench_function("single_pass_minsup_2", |b| {
        let config = MfiBlocksConfig { max_minsup: 2, ..MfiBlocksConfig::default() };
        b.iter(|| black_box(mfi_blocks(&gen.dataset, &config)))
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let gen = random_set(1_500, 42);
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);
    group.bench_function("with_pruning", |b| {
        b.iter(|| black_box(mfi_blocks(&gen.dataset, &MfiBlocksConfig::default())))
    });
    group.bench_function("without_pruning", |b| {
        let config = MfiBlocksConfig {
            prune_frequent: None,
            prune_common: None,
            ..MfiBlocksConfig::default()
        };
        b.iter(|| black_box(mfi_blocks(&gen.dataset, &config)))
    });
    group.finish();
}

fn bench_maximal_vs_all(c: &mut Criterion) {
    // Duplicate-heavy bags where maximal mining shines.
    let gen = random_set(400, 42);
    let bags: Vec<Vec<u32>> =
        gen.dataset.bags().iter().map(|b| b.iter().map(|i| i.0).collect()).collect();
    let pruned = yv_mfi::prune_common_items(&bags, 0.05).0;
    let mut group = c.benchmark_group("ablation_maximal_mining");
    group.sample_size(10);
    group.bench_function("fpmax_direct_maximal", |b| {
        b.iter(|| black_box(mine_maximal(&pruned, 3)))
    });
    group.bench_function("fpgrowth_all_frequent", |b| {
        b.iter(|| black_box(mine_frequent(&pruned, 3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interning,
    bench_minsup_descent,
    bench_pruning,
    bench_maximal_vs_all
);
criterion_main!(benches);
