//! Figures 15–16 / Table 9 bench: MFIBlocks end-to-end under the NG sweep
//! and the three block-score functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use yv_blocking::{mfi_blocks, MfiBlocksConfig};
use yv_datagen::{random_set, Generated};

fn dataset() -> Generated {
    random_set(2_000, 42)
}

fn bench_ng_sweep(c: &mut Criterion) {
    let gen = dataset();
    let mut group = c.benchmark_group("fig15_16_ng_sweep");
    group.sample_size(10);
    for ng in [1.5, 3.0, 5.0] {
        group.bench_with_input(BenchmarkId::from_parameter(ng), &ng, |b, &ng| {
            let config = MfiBlocksConfig::default().with_ng(ng);
            b.iter(|| black_box(mfi_blocks(&gen.dataset, &config)));
        });
    }
    group.finish();
}

fn bench_score_functions(c: &mut Criterion) {
    let gen = dataset();
    let mut group = c.benchmark_group("table9_score_functions");
    group.sample_size(10);
    for (name, config) in [
        ("jaccard", MfiBlocksConfig::base()),
        ("expert_weighting", MfiBlocksConfig::expert_weighting()),
        ("expert_sim", MfiBlocksConfig::expert_sim()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(mfi_blocks(&gen.dataset, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ng_sweep, bench_score_functions);
criterion_main!(benches);
