//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p yv-bench --bin reproduce --release           # default scale
//! YV_SCALE=quick cargo run -p yv-bench --bin reproduce --release
//! ```

use std::io::Write;
use std::time::Instant;

fn main() {
    let scale = yv_bench::scale_from_env();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "Reproducing the evaluation of \"Multi-Source Uncertain Entity Resolution\" \
         (Sagi et al.)\nScale: {scale:?}\n"
    )
    .expect("stdout");
    let start = Instant::now();
    for report in yv_eval::run_all(&scale) {
        writeln!(out, "{}\n", report.render()).expect("stdout");
    }
    writeln!(out, "Total: {:?}", start.elapsed()).expect("stdout");
}
