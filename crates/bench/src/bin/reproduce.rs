//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p yv-bench --bin reproduce --release           # default scale
//! YV_SCALE=quick cargo run -p yv-bench --bin reproduce --release
//! ```

use std::io::Write;
use yv_obs::{Clock, MonotonicClock};

fn main() {
    let scale = yv_bench::scale_from_env();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "Reproducing the evaluation of \"Multi-Source Uncertain Entity Resolution\" \
         (Sagi et al.)\nScale: {scale:?}\n"
    )
    .expect("stdout");
    let clock = MonotonicClock::new();
    let start = clock.now_nanos();
    for report in yv_eval::run_all(&scale) {
        writeln!(out, "{}\n", report.render()).expect("stdout");
    }
    let elapsed = std::time::Duration::from_nanos(clock.now_nanos().saturating_sub(start));
    writeln!(out, "Total: {elapsed:?}").expect("stdout");
}
