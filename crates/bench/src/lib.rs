//! # yv-bench
//!
//! Benchmark and reproduction targets:
//!
//! * `cargo run -p yv-bench --bin reproduce --release` regenerates **every
//!   table and figure** of the paper's evaluation (Section 6) and prints
//!   them in paper order. Set `YV_SCALE=quick` for a fast smoke run or
//!   `YV_SCALE=full` for the default laptop-scale run.
//! * `cargo bench -p yv-bench` runs the Criterion micro/mesobenchmarks:
//!   one per table/figure family plus the ablations called out in
//!   DESIGN.md.

use yv_eval::Scale;

/// Resolve the experiment scale from the `YV_SCALE` environment variable
/// (`quick` or `full`; default `full`).
#[must_use]
pub fn scale_from_env() -> Scale {
    match std::env::var("YV_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::default(),
    }
}
