//! The ranked scorer: blend candidate-name similarity with entity-level
//! evidence and emit a deterministic global ranking.
//!
//! Ranking runs on *entities* — the resolved people of the incremental
//! resolver — not on raw candidate names. Every record posted under a
//! surviving candidate name is mapped to its entity (records the
//! resolver left unmatched stand as singleton entities), the entity is
//! keyed by its smallest member record id, and four signals are blended:
//!
//! - **Jaro-Winkler** between the query and the entity's best candidate
//!   name — the prefix-weighted edit similarity the paper's feature set
//!   already uses;
//! - **q-gram Jaccard** of that same name, computed exactly by the
//!   candidate filter;
//! - a **log report-count prior**: entities reported by many sources are
//!   a priori likelier referents (squashed so dossier size never swamps
//!   name evidence);
//! - the resolution's **certainty**: the best incident match score among
//!   the entity's members, i.e. how confident the resolver itself is
//!   that this dossier is one person.
//!
//! Determinism is load-bearing — the store must serve the same ranking
//! for the same logical state regardless of shard count, thread
//! interleaving, or restarts — so every aggregation step here iterates
//! in a sorted order (`BTreeMap`), name ties break toward the
//! lexicographically smaller name, and the final order is score
//! `total_cmp` descending then entity id ascending.

use std::collections::BTreeMap;
use yv_records::RecordId;
use yv_similarity::jaro_winkler;

/// Weights of the four ranking signals. The name signals (Jaro-Winkler
/// and q-gram Jaccard) dominate by default; the prior and certainty act
/// as tie-breakers between entities whose names match equally well —
/// the blend the `yv-eval` sweep measures against datagen gold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBlend {
    /// Weight of Jaro-Winkler(query, best name).
    pub name_weight: f64,
    /// Weight of the q-gram Jaccard from candidate generation.
    pub qgram_weight: f64,
    /// Weight of the squashed log report-count prior.
    pub prior_weight: f64,
    /// Weight of the squashed resolver certainty.
    pub certainty_weight: f64,
}

impl Default for ScoreBlend {
    fn default() -> ScoreBlend {
        ScoreBlend {
            name_weight: 0.5,
            qgram_weight: 0.25,
            prior_weight: 0.1,
            certainty_weight: 0.15,
        }
    }
}

impl ScoreBlend {
    /// The name-similarity part of the score (per candidate name).
    #[must_use]
    pub fn name_part(&self, jw: f64, qgram_jaccard: f64) -> f64 {
        self.name_weight * jw + self.qgram_weight * qgram_jaccard
    }

    /// The entity-evidence part of the score (independent of which
    /// candidate name matched).
    #[must_use]
    pub fn entity_part(&self, reports: usize, certainty: f64) -> f64 {
        self.prior_weight * squash((1.0 + reports as f64).ln())
            + self.certainty_weight * squash(certainty.max(0.0))
    }
}

/// Map `[0, ∞)` into `[0, 1)` monotonically: `x / (1 + x)`.
fn squash(x: f64) -> f64 {
    x / (1.0 + x)
}

/// One ranked entity in a `RESOLVE` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedEntity {
    /// Entity id: the smallest member record id.
    pub entity: RecordId,
    /// Blended score.
    pub score: f64,
    /// The candidate name that scored best for this entity.
    pub name: String,
    /// Every member record, ascending.
    pub members: Vec<RecordId>,
}

/// Rank the merged candidate names of a fuzzy scan into a deterministic
/// entity ranking.
///
/// `names` is the (possibly cross-shard) union of surviving candidates:
/// `(lowercased name, exact q-gram Jaccard, records posting it)`. The
/// same name may appear once per shard; occurrences are merged here, so
/// the output depends only on the union — the shard count can never leak
/// into the ranking. `entity_of` maps a record to its entity's full,
/// ascending member list (callers return `vec![rid]` for singletons);
/// `certainty_of` returns the resolver's best incident match score for
/// a record (≤ 0 meaning "no evidence").
///
/// `query` must already be lowercased — the index lowercases at both
/// build and scan time, and Jaro-Winkler is case-sensitive.
#[must_use]
pub fn rank_entities<'a>(
    query: &str,
    names: impl IntoIterator<Item = (&'a str, f64, &'a [RecordId])>,
    entity_of: impl Fn(RecordId) -> Vec<RecordId>,
    certainty_of: impl Fn(RecordId) -> f64,
    blend: &ScoreBlend,
    k: usize,
    min_score: f64,
) -> Vec<RankedEntity> {
    // Merge per-shard occurrences of the same name. The Jaccard is a
    // pure function of (query, name) so shards agree on it exactly.
    let mut merged: BTreeMap<&str, (f64, Vec<RecordId>)> = BTreeMap::new();
    for (name, jaccard, records) in names {
        let entry = merged.entry(name).or_insert((jaccard, Vec::new()));
        entry.1.extend_from_slice(records);
    }

    // Fold names into entities, keeping each entity's best name part.
    // Names iterate ascending, and only a strictly better part replaces
    // the incumbent, so equal-scoring names resolve to the smaller one.
    struct Agg<'n> {
        name_part: f64,
        name: &'n str,
        members: Vec<RecordId>,
    }
    let mut entities: BTreeMap<RecordId, Agg<'_>> = BTreeMap::new();
    for (name, (jaccard, records)) in &merged {
        let part = blend.name_part(jaro_winkler(query, name), *jaccard);
        for &rid in records {
            let members = entity_of(rid);
            let rep = members.first().copied().unwrap_or(rid);
            let agg = entities.entry(rep).or_insert(Agg { name_part: f64::NEG_INFINITY, name, members });
            if part > agg.name_part {
                agg.name_part = part;
                agg.name = name;
            }
        }
    }

    let mut out: Vec<RankedEntity> = entities
        .into_iter()
        .map(|(rep, agg)| {
            let certainty =
                agg.members.iter().map(|&r| certainty_of(r)).fold(0.0_f64, f64::max);
            let score = agg.name_part + blend.entity_part(agg.members.len(), certainty);
            RankedEntity { entity: rep, score, name: agg.name.to_owned(), members: agg.members }
        })
        .filter(|hit| hit.score >= min_score)
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.entity.cmp(&b.entity)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RecordId {
        RecordId(n)
    }

    type NameRow = (&'static str, f64, Vec<RecordId>);

    /// A tiny fixed world: entity {0,1} named levi/lewi, singleton 5
    /// named levi, singleton 9 named roth.
    fn world() -> (Vec<NameRow>, impl Fn(RecordId) -> Vec<RecordId>) {
        let names = vec![
            ("levi", 0.8, vec![rid(0), rid(5)]),
            ("lewi", 0.5, vec![rid(1)]),
            ("roth", 0.3, vec![rid(9)]),
        ];
        let entity_of = |r: RecordId| match r.0 {
            0 | 1 => vec![rid(0), rid(1)],
            other => vec![rid(other)],
        };
        (names, entity_of)
    }

    fn rank(
        blend: &ScoreBlend,
        k: usize,
        min: f64,
        certainty: impl Fn(RecordId) -> f64,
    ) -> Vec<RankedEntity> {
        let (names, entity_of) = world();
        rank_entities(
            "levi",
            names.iter().map(|(n, j, rs)| (*n, *j, rs.as_slice())),
            entity_of,
            certainty,
            blend,
            k,
            min,
        )
    }

    #[test]
    fn entities_merge_records_and_keep_the_best_name() {
        let hits = rank(&ScoreBlend::default(), 10, f64::NEG_INFINITY, |_| 0.0);
        assert_eq!(hits.len(), 3);
        // Entity {0,1} was reachable through both "levi" and "lewi"; the
        // exact name wins as its display name.
        let merged = hits.iter().find(|h| h.entity == rid(0)).expect("merged entity");
        assert_eq!(merged.name, "levi");
        assert_eq!(merged.members, vec![rid(0), rid(1)]);
        // The exact-match entities outrank "roth".
        assert_eq!(hits.last().map(|h| h.entity), Some(rid(9)));
    }

    #[test]
    fn prior_and_certainty_break_name_ties() {
        // With pure name weights the merged entity and singleton 5 tie
        // exactly (both best-name "levi") — the id breaks the tie.
        let name_only = ScoreBlend {
            name_weight: 1.0,
            qgram_weight: 0.0,
            prior_weight: 0.0,
            certainty_weight: 0.0,
        };
        let hits = rank(&name_only, 2, f64::NEG_INFINITY, |_| 0.0);
        assert_eq!(hits[0].entity, rid(0));
        assert_eq!(hits[1].entity, rid(5));
        assert_eq!(hits[0].score, hits[1].score);

        // A report-count prior promotes the two-report entity strictly.
        let with_prior = ScoreBlend { prior_weight: 0.2, ..name_only };
        let hits = rank(&with_prior, 2, f64::NEG_INFINITY, |_| 0.0);
        assert!(hits[0].score > hits[1].score);
        assert_eq!(hits[0].entity, rid(0));

        // Certainty on the singleton's record promotes *it* instead.
        let with_certainty = ScoreBlend { certainty_weight: 0.3, ..name_only };
        let certain_five = |r: RecordId| if r == rid(5) { 2.0 } else { 0.0 };
        let hits = rank(&with_certainty, 2, f64::NEG_INFINITY, certain_five);
        assert_eq!(hits[0].entity, rid(5));
    }

    #[test]
    fn k_truncates_and_min_filters() {
        let hits = rank(&ScoreBlend::default(), 1, f64::NEG_INFINITY, |_| 0.0);
        assert_eq!(hits.len(), 1);
        let all = rank(&ScoreBlend::default(), 10, f64::NEG_INFINITY, |_| 0.0);
        let cutoff = all[1].score;
        let filtered = rank(&ScoreBlend::default(), 10, cutoff, |_| 0.0);
        assert_eq!(filtered.len(), 2, "min is inclusive");
    }

    #[test]
    fn shard_duplicated_names_rank_identically() {
        // The same name arriving from two "shards" with split postings
        // must rank exactly like one shard holding the union.
        let split = [
            ("levi", 0.8, vec![rid(0)]),
            ("levi", 0.8, vec![rid(5)]),
            ("roth", 0.3, vec![rid(9)]),
        ];
        let (union, entity_of) = world();
        let union_named: Vec<_> =
            union.iter().filter(|(n, _, _)| *n != "lewi").cloned().collect();
        let blend = ScoreBlend::default();
        let a = rank_entities(
            "levi",
            split.iter().map(|(n, j, rs)| (*n, *j, rs.as_slice())),
            &entity_of,
            |_| 0.0,
            &blend,
            10,
            f64::NEG_INFINITY,
        );
        let b = rank_entities(
            "levi",
            union_named.iter().map(|(n, j, rs)| (*n, *j, rs.as_slice())),
            &entity_of,
            |_| 0.0,
            &blend,
            10,
            f64::NEG_INFINITY,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn negative_certainty_is_clamped_to_zero_evidence() {
        let blend = ScoreBlend::default();
        assert_eq!(blend.entity_part(1, -5.0), blend.entity_part(1, 0.0));
        assert!(blend.entity_part(1, 1.0) > blend.entity_part(1, 0.0));
        assert!(blend.entity_part(50, 0.0) > blend.entity_part(1, 0.0));
    }
}
