//! # yv-fuzzy
//!
//! Fuzzy name resolution for the store's serve path: the paper's end
//! product is a *ranked* answer to "who is this partially remembered,
//! possibly misspelled person?", and this crate supplies both halves of
//! that answer.
//!
//! - [`index`] — a q-gram inverted index over distinct lowercased names
//!   (gram → name-id posting lists, record postings per name) with the
//!   classic length and count filters, so a scan touches only names that
//!   can possibly reach the similarity bound;
//! - [`rank`] — a deterministic entity ranker blending Jaro-Winkler,
//!   q-gram Jaccard, a log report-count prior, and the incremental
//!   resolver's own certainty.
//!
//! `yv-store` maintains one [`FuzzyIndex`] per shard next to its exact
//! `QueryIndex` and fans `RESOLVE` queries across them; the shard
//! outputs are unions, not top-k truncations, so the merged ranking from
//! [`rank_entities`] is provably independent of the shard count.
//!
//! ```
//! use yv_fuzzy::{FuzzyIndex, ScoreBlend, rank_entities, DEFAULT_QGRAM_BOUND};
//! use yv_records::{RecordBuilder, RecordId, SourceId};
//!
//! let mut index = FuzzyIndex::new();
//! let record = RecordBuilder::new(1, SourceId(0)).last_name("Levi").build();
//! index.add_record(RecordId(0), &record);
//!
//! let (candidates, _stats) = index.candidates("Lewi", DEFAULT_QGRAM_BOUND);
//! let hits = rank_entities(
//!     "lewi",
//!     candidates.iter().map(|c| (c.name, c.jaccard, c.records)),
//!     |rid| vec![rid],          // singleton entities
//!     |_| 0.0,                  // no resolver certainty
//!     &ScoreBlend::default(),
//!     5,
//!     f64::NEG_INFINITY,
//! );
//! assert_eq!(hits[0].name, "levi");
//! ```

pub mod index;
pub mod rank;

pub use index::{CandidateName, CandidateStats, FuzzyIndex, DEFAULT_QGRAM_BOUND, QGRAM_Q};
pub use rank::{rank_entities, RankedEntity, ScoreBlend};
