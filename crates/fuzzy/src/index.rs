//! The q-gram inverted index: gram → posting list of name ids, with
//! length and count filtering to prune candidates that cannot reach the
//! similarity bound.
//!
//! Names are the unit of indexing, not records: victim reports repeat a
//! small vocabulary of first and last names millions of times, so the
//! index stores each distinct lowercased name once, keyed by a dense
//! `u32` name id, and hangs the record posting list off the name entry.
//! A fuzzy query then runs entirely in name space — merge the posting
//! lists of the query's grams, filter by the q-gram Jaccard bound — and
//! only the surviving names fan out to records.
//!
//! The filters are the standard q-gram containment bounds (see the
//! blocking-and-filtering survey in PAPERS.md): writing `gq`/`gc` for
//! the distinct padded-gram counts of query and candidate and `t` for
//! the bound,
//!
//! - **length filter**: `J(q,c) >= t` forces `t·gq <= gc <= gq/t`, so a
//!   candidate whose gram count falls outside that window is pruned
//!   before its intersection is even inspected;
//! - **count filter**: `J >= t` forces the intersection
//!   `inter >= t·(gq+gc)/(1+t)`, pruning before the final division.
//!
//! Both cheap filters are applied with a small epsilon of slack so a
//! candidate *exactly at* the bound is never lost to floating-point
//! rounding; the exact Jaccard (the same `inter/union` expression as
//! [`yv_similarity::jaccard_sets`]) is the final arbiter.

use std::collections::HashMap;
use yv_records::{Record, RecordId};
use yv_similarity::strings::padded_qgrams;

/// Gram width. Two is the sweet spot for short personal names: a name of
/// length L yields L+1 padded bigrams, so a single clerical error
/// disturbs at most 2 of them and a one-edit neighbour keeps a Jaccard
/// well above [`DEFAULT_QGRAM_BOUND`].
pub const QGRAM_Q: usize = 2;

/// Default candidate-generation bound. A single edit on a length-3 name
/// still scores about 0.33, so 0.3 keeps every one-edit neighbour while
/// pruning the long tail of unrelated vocabulary.
pub const DEFAULT_QGRAM_BOUND: f64 = 0.3;

/// Slack for the cheap integer-count filters only — the exact Jaccard
/// comparison runs without it.
const EPS: f64 = 1e-9;

/// One distinct lowercased name and the records that report it.
#[derive(Debug, Clone)]
struct NameEntry {
    name: String,
    /// Distinct padded q-grams in the name (the `gc` of the filters).
    gram_count: u32,
    /// Records reporting this name, in arrival order, deduplicated
    /// against the tail (a record listing the same name twice posts
    /// once).
    postings: Vec<RecordId>,
}

/// Filter telemetry for one candidate scan, surfaced as counters in
/// `STATS`/`METRICS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Distinct names sharing at least one gram with the query.
    pub examined: u64,
    /// Names pruned by the gram-count window before scoring.
    pub pruned_length: u64,
    /// Names pruned by the count filter or the exact Jaccard comparison.
    pub pruned_jaccard: u64,
}

/// One name that survived the filters, borrowed from the index.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateName<'a> {
    pub name: &'a str,
    /// Exact q-gram Jaccard between the query and this name.
    pub jaccard: f64,
    /// Records reporting this name.
    pub records: &'a [RecordId],
}

/// The per-shard secondary index: distinct names with record postings,
/// inverted by padded q-gram.
///
/// Rebuilt deterministically from the shard's records on `create`,
/// `open` (snapshot load + WAL replay) and every `add`, so it needs no
/// on-disk format of its own — the record segments and WALs already
/// carry everything.
#[derive(Debug, Clone, Default)]
pub struct FuzzyIndex {
    names: Vec<NameEntry>,
    /// Lowercased name → dense name id.
    ids: HashMap<String, u32>,
    /// Padded q-gram → sorted-unique name ids containing it (ids are
    /// appended in allocation order, which is ascending).
    grams: HashMap<String, Vec<u32>>,
    /// Total gram → name posting entries, tracked for the size gauges.
    gram_postings: usize,
}

impl FuzzyIndex {
    #[must_use]
    pub fn new() -> FuzzyIndex {
        FuzzyIndex::default()
    }

    /// Index every first and last name of a record. Empty names are
    /// skipped — they carry no grams and can never match a query.
    pub fn add_record(&mut self, rid: RecordId, record: &Record) {
        for name in record.first_names.iter().chain(record.last_names.iter()) {
            let lower = name.to_lowercase();
            if !lower.is_empty() {
                self.add_name(&lower, rid);
            }
        }
    }

    fn add_name(&mut self, lower: &str, rid: RecordId) {
        let id = match self.ids.get(lower) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as u32;
                let name_grams = distinct_grams(lower);
                for gram in &name_grams {
                    self.grams.entry(gram.clone()).or_default().push(id);
                }
                self.gram_postings += name_grams.len();
                self.names.push(NameEntry {
                    name: lower.to_owned(),
                    gram_count: name_grams.len() as u32,
                    postings: Vec::new(),
                });
                self.ids.insert(lower.to_owned(), id);
                id
            }
        };
        let entry = &mut self.names[id as usize];
        if entry.postings.last() != Some(&rid) {
            entry.postings.push(rid);
        }
    }

    /// Distinct lowercased names indexed.
    #[must_use]
    pub fn names(&self) -> usize {
        self.names.len()
    }

    /// Distinct q-grams in the inverted index.
    #[must_use]
    pub fn grams(&self) -> usize {
        self.grams.len()
    }

    /// Total gram → name posting entries (the inverted index's weight).
    #[must_use]
    pub fn postings(&self) -> usize {
        self.gram_postings
    }

    /// Every name whose q-gram Jaccard with `query` reaches `bound`,
    /// sorted by name ascending (so the output is independent of
    /// insertion order), plus the filter telemetry.
    #[must_use]
    pub fn candidates(&self, query: &str, bound: f64) -> (Vec<CandidateName<'_>>, CandidateStats) {
        let mut stats = CandidateStats::default();
        let query_grams = distinct_grams(&query.to_lowercase());
        let gq = query_grams.len();
        if gq == 0 {
            return (Vec::new(), stats);
        }

        // Merge posting lists into per-name intersection counts.
        let mut inter_counts: HashMap<u32, u32> = HashMap::new();
        for gram in &query_grams {
            if let Some(ids) = self.grams.get(gram) {
                for &id in ids {
                    *inter_counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(u32, u32)> = inter_counts.into_iter().collect();
        hits.sort_unstable_by_key(|&(id, _)| id);
        stats.examined = hits.len() as u64;

        let (lo, hi) = (gq as f64 * bound - EPS, gq as f64 / bound.max(f64::EPSILON) + EPS);
        let mut out = Vec::new();
        for (id, inter) in hits {
            let entry = &self.names[id as usize];
            let gc = entry.gram_count as usize;
            if (gc as f64) < lo || (gc as f64) > hi {
                stats.pruned_length += 1;
                continue;
            }
            // Cheap count filter, then the exact Jaccard — identical
            // arithmetic to `jaccard_sets`, so the filter pipeline and a
            // brute-force scan agree bit-for-bit.
            if f64::from(inter) * (1.0 + bound) + EPS < bound * (gq + gc) as f64 {
                stats.pruned_jaccard += 1;
                continue;
            }
            let union = (gq + gc - inter as usize) as f64;
            let jaccard = f64::from(inter) / union;
            if jaccard >= bound {
                out.push(CandidateName {
                    name: &entry.name,
                    jaccard,
                    records: &entry.postings,
                });
            } else {
                stats.pruned_jaccard += 1;
            }
        }
        // Name ids are allocated in insertion order; sort by the name
        // itself so two indexes over the same record *set* (different
        // arrival orders) emit identical candidate lists.
        out.sort_unstable_by(|a, b| a.name.cmp(b.name));
        (out, stats)
    }
}

/// Sorted-unique padded q-grams of an already-lowercased name.
fn distinct_grams(lower: &str) -> Vec<String> {
    let mut grams = padded_qgrams(lower, QGRAM_Q);
    grams.sort_unstable();
    grams.dedup();
    grams
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use yv_records::{RecordBuilder, SourceId};
    use yv_similarity::jaccard::jaccard_sets;

    fn record(id: u32, first: &str, last: &str) -> Record {
        RecordBuilder::new(u64::from(id), SourceId(0)).first_name(first).last_name(last).build()
    }

    fn index_of(names: &[&str]) -> FuzzyIndex {
        let mut index = FuzzyIndex::new();
        for (i, name) in names.iter().enumerate() {
            index.add_record(RecordId(i as u32), &record(i as u32, "", name));
        }
        index
    }

    #[test]
    fn one_edit_neighbours_survive_the_default_bound() {
        let index = index_of(&["levi", "foa", "postel", "roth"]);
        // Substitutions, duplications and deletions — the clerical
        // errors datagen simulates. (A transposition disturbs four
        // bigrams at once and needs Jaro-Winkler at ranking time.)
        for typo in ["lewi", "levvi", "evi", "postl", "postell"] {
            let (cands, _) = index.candidates(typo, DEFAULT_QGRAM_BOUND);
            assert!(
                cands.iter().any(|c| c.name == "levi" || c.name == "postel"),
                "{typo} found no neighbour: {cands:?}"
            );
        }
    }

    #[test]
    fn length_filter_prunes_before_scoring() {
        // "fononono" shares grams with "fo" (both start with 'f', share
        // "fo") but its gram count falls outside the window for a 0.9
        // bound, so the length filter rejects it without scoring.
        let index = index_of(&["fo", "fononono", "foa"]);
        let (cands, stats) = index.candidates("fo", 0.9);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].name, "fo");
        assert!(stats.pruned_length >= 1, "{stats:?}");
        assert_eq!(
            stats.examined,
            cands.len() as u64 + stats.pruned_length + stats.pruned_jaccard
        );
    }

    #[test]
    fn exact_name_scores_one_and_postings_dedupe() {
        let mut index = FuzzyIndex::new();
        index.add_record(RecordId(0), &record(0, "guido", "foa"));
        // Same record lists the name twice → one posting.
        let twice =
            RecordBuilder::new(1, SourceId(0)).last_name("Foa").last_name("foa").build();
        index.add_record(RecordId(1), &twice);
        let (cands, _) = index.candidates("Foa", 0.5);
        let foa = cands.iter().find(|c| c.name == "foa").expect("exact match");
        assert!((foa.jaccard - 1.0).abs() < 1e-12);
        assert_eq!(foa.records, &[RecordId(0), RecordId(1)]);
        assert_eq!(index.names(), 2, "guido and foa");
        assert!(index.grams() > 0 && index.postings() >= index.grams());
    }

    #[test]
    fn empty_names_and_empty_queries_are_inert() {
        let mut index = FuzzyIndex::new();
        index.add_record(RecordId(0), &RecordBuilder::new(1, SourceId(0)).build());
        assert_eq!(index.names(), 0);
        let (cands, stats) = index.candidates("", 0.3);
        assert!(cands.is_empty());
        assert_eq!(stats, CandidateStats::default());
    }

    #[test]
    fn candidate_order_is_independent_of_insertion_order() {
        let forward = index_of(&["levi", "lepi", "lewi", "leui"]);
        let backward = index_of(&["leui", "lewi", "lepi", "levi"]);
        let (a, _) = forward.candidates("levi", 0.3);
        let (b, _) = backward.candidates("levi", 0.3);
        let names_a: Vec<&str> = a.iter().map(|c| c.name).collect();
        let names_b: Vec<&str> = b.iter().map(|c| c.name).collect();
        assert_eq!(names_a, names_b);
        assert!(names_a.windows(2).all(|w| w[0] < w[1]), "sorted ascending: {names_a:?}");
    }

    proptest! {
        /// The tentpole correctness property: against brute-force q-gram
        /// Jaccard over every indexed name, the filter pipeline never
        /// prunes a candidate at or above the bound, never admits one
        /// below it, and reports the exact brute-force score.
        #[test]
        fn filters_agree_with_brute_force(
            names in proptest::collection::vec("[a-z]{1,12}", 1..40),
            query in "[a-z]{1,12}",
            bound_pct in 5u32..96,
        ) {
            let bound = f64::from(bound_pct) / 100.0;
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let index = index_of(&refs);
            let (cands, stats) = index.candidates(&query, bound);
            let got: std::collections::HashMap<&str, f64> =
                cands.iter().map(|c| (c.name, c.jaccard)).collect();

            let distinct: BTreeSet<&str> = refs.iter().copied().collect();
            let query_grams = padded_qgrams(&query, QGRAM_Q);
            let mut expected = 0usize;
            for name in distinct {
                let brute = jaccard_sets(&query_grams, &padded_qgrams(name, QGRAM_Q));
                prop_assert_eq!(
                    got.contains_key(name),
                    brute >= bound,
                    "name {} brute {} bound {}", name, brute, bound
                );
                if brute >= bound {
                    expected += 1;
                    let reported = got[name];
                    prop_assert!(
                        (reported - brute).abs() == 0.0,
                        "reported {} != brute {}", reported, brute
                    );
                }
            }
            prop_assert_eq!(cands.len(), expected);
            // Telemetry is consistent: every examined name is either
            // returned or pruned by exactly one filter.
            prop_assert_eq!(
                stats.examined,
                cands.len() as u64 + stats.pruned_length + stats.pruned_jaccard
            );
        }
    }
}
