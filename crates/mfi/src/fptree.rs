//! The FP-tree: a prefix tree over frequency-ordered transactions with
//! per-item node links, the core data structure of FP-Growth.

use std::collections::HashMap;

/// Sentinel for "no node" in parent/link fields.
const NIL: usize = usize::MAX;

/// One FP-tree node. `item` is a *rank* (position in the tree's
/// frequency-descending item order), not an original item id.
#[derive(Debug, Clone)]
struct Node {
    item: usize,
    count: u64,
    parent: usize,
    /// Next node carrying the same item (header chain).
    link: usize,
    /// Child nodes keyed by item rank. Linear scan — fan-out is small in
    /// practice because transactions are frequency-ordered.
    children: Vec<(usize, usize)>,
}

/// An FP-tree together with its header table and the mapping from ranks
/// back to original item ids.
#[derive(Debug)]
pub struct FpTree {
    nodes: Vec<Node>,
    /// First node of each item's header chain, indexed by rank.
    headers: Vec<usize>,
    /// Total count per rank (support of the single-item set).
    rank_counts: Vec<u64>,
    /// Original item id per rank, frequency-descending.
    rank_to_item: Vec<u32>,
}

impl FpTree {
    /// Build an FP-tree from weighted transactions, keeping only items with
    /// total weight ≥ `minsup`. Transactions may contain infrequent items;
    /// they are filtered out here.
    #[must_use]
    pub fn build<'a, I>(transactions: I, minsup: u64) -> FpTree
    where
        I: IntoIterator<Item = (&'a [u32], u64)> + Clone,
    {
        // Pass 1: item frequencies (set semantics — an item counts once per
        // transaction even when the bag repeats it).
        let mut freq: HashMap<u32, u64> = HashMap::new();
        let mut seen: Vec<u32> = Vec::new();
        for (items, weight) in transactions.clone() {
            seen.clear();
            seen.extend_from_slice(items);
            seen.sort_unstable();
            seen.dedup();
            for &item in &seen {
                *freq.entry(item).or_insert(0) += weight;
            }
        }
        let mut frequent: Vec<(u32, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= minsup).collect();
        // Frequency-descending, ties by item id for determinism.
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank_to_item: Vec<u32> = frequent.iter().map(|&(i, _)| i).collect();
        let rank_counts: Vec<u64> = frequent.iter().map(|&(_, c)| c).collect();
        let item_to_rank: HashMap<u32, usize> =
            rank_to_item.iter().enumerate().map(|(r, &i)| (i, r)).collect();

        let mut tree = FpTree {
            nodes: vec![Node { item: NIL, count: 0, parent: NIL, link: NIL, children: Vec::new() }],
            headers: vec![NIL; rank_to_item.len()],
            rank_counts,
            rank_to_item,
        };

        // Pass 2: insert transactions with items mapped to ranks, ascending
        // (most frequent first).
        let mut ranked: Vec<usize> = Vec::new();
        for (items, weight) in transactions {
            ranked.clear();
            ranked.extend(items.iter().filter_map(|i| item_to_rank.get(i).copied()));
            ranked.sort_unstable();
            ranked.dedup();
            tree.insert(&ranked, weight);
        }
        tree
    }

    fn insert(&mut self, ranked: &[usize], weight: u64) {
        let mut cur = 0usize;
        for &rank in ranked {
            let existing = self.nodes[cur]
                .children
                .iter()
                .find(|&&(r, _)| r == rank)
                .map(|&(_, idx)| idx);
            let child = match existing {
                Some(idx) => idx,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item: rank,
                        count: 0,
                        parent: cur,
                        link: self.headers[rank],
                        children: Vec::new(),
                    });
                    self.headers[rank] = idx;
                    self.nodes[cur].children.push((rank, idx));
                    idx
                }
            };
            self.nodes[child].count += weight;
            cur = child;
        }
    }

    /// Number of frequent items (ranks).
    #[must_use]
    pub fn n_ranks(&self) -> usize {
        self.rank_to_item.len()
    }

    /// Original item id of a rank.
    #[must_use]
    pub fn item_of(&self, rank: usize) -> u32 {
        self.rank_to_item[rank]
    }

    /// Support of a rank's single-item set.
    #[must_use]
    pub fn rank_count(&self, rank: usize) -> u64 {
        self.rank_counts[rank]
    }

    /// True when the tree is empty (no frequent items or no transactions).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// If the tree consists of a single path from the root, return that
    /// path as `(rank, count)` pairs from top to bottom.
    #[must_use]
    pub fn single_path(&self) -> Option<Vec<(usize, u64)>> {
        let mut path = Vec::new();
        let mut cur = 0usize;
        loop {
            match self.nodes[cur].children.len() {
                0 => return Some(path),
                1 => {
                    let (_, idx) = self.nodes[cur].children[0];
                    let node = &self.nodes[idx];
                    path.push((node.item, node.count));
                    cur = idx;
                }
                _ => return None,
            }
        }
    }

    /// The conditional pattern base of a rank: for every node carrying the
    /// rank, the path of ranks from its parent up to the root, weighted by
    /// the node's count. Returned paths contain *original item ids*.
    #[must_use]
    pub fn conditional_base(&self, rank: usize) -> Vec<(Vec<u32>, u64)> {
        let mut base = Vec::new();
        let mut node_idx = self.headers[rank];
        while node_idx != NIL {
            let node = &self.nodes[node_idx];
            let mut path = Vec::new();
            let mut up = node.parent;
            while up != 0 && up != NIL {
                path.push(self.rank_to_item[self.nodes[up].item]);
                up = self.nodes[up].parent;
            }
            if !path.is_empty() {
                path.reverse();
                base.push((path, node.count));
            }
            node_idx = node.link;
        }
        base
    }

    /// Iterate ranks from least frequent to most frequent (the FP-Growth
    /// processing order).
    pub fn ranks_ascending_frequency(&self) -> impl Iterator<Item = usize> {
        (0..self.rank_to_item.len()).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![1, 2, 4], vec![1, 5], vec![6]]
    }

    fn build(bags: &[Vec<u32>], minsup: u64) -> FpTree {
        FpTree::build(bags.iter().map(|b| (b.as_slice(), 1)), minsup)
    }

    #[test]
    fn infrequent_items_are_dropped() {
        let tree = build(&tiny(), 2);
        // Frequent at minsup 2: item 1 (3x), item 2 (2x).
        assert_eq!(tree.n_ranks(), 2);
        assert_eq!(tree.item_of(0), 1);
        assert_eq!(tree.item_of(1), 2);
        assert_eq!(tree.rank_count(0), 3);
        assert_eq!(tree.rank_count(1), 2);
    }

    #[test]
    fn empty_when_nothing_frequent() {
        let tree = build(&tiny(), 10);
        assert!(tree.is_empty());
        assert_eq!(tree.n_ranks(), 0);
    }

    #[test]
    fn single_path_detection() {
        // All transactions identical => one path.
        let bags = vec![vec![1, 2, 3]; 3];
        let tree = build(&bags, 2);
        let path = tree.single_path().expect("should be single path");
        assert_eq!(path.len(), 3);
        assert!(path.iter().all(|&(_, c)| c == 3));

        // Diverging transactions => not a single path.
        let tree2 = build(&[vec![1, 2], vec![1, 3], vec![2, 3]], 2);
        assert!(tree2.single_path().is_none());
    }

    #[test]
    fn conditional_base_paths() {
        let bags = vec![vec![1, 2, 3], vec![1, 2, 3], vec![2, 3]];
        let tree = build(&bags, 2);
        // Least frequent rank is item 1 (count 2); its conditional base
        // should be the path {2, 3} (in some frequency order) with count 2.
        let rank_of_1 = (0..tree.n_ranks()).find(|&r| tree.item_of(r) == 1).unwrap();
        let base = tree.conditional_base(rank_of_1);
        assert_eq!(base.len(), 1);
        let (path, count) = &base[0];
        assert_eq!(*count, 2);
        let mut sorted = path.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3]);
    }

    #[test]
    fn duplicate_items_in_transaction_count_once() {
        let bags = [vec![1, 1, 2], vec![1, 2]];
        // Weights: item 1 appears twice in first bag but the tree dedups per
        // transaction path (standard set semantics after ranking).
        let tree = FpTree::build(bags.iter().map(|b| (b.as_slice(), 1)), 2);
        let rank_of_1 = (0..tree.n_ranks()).find(|&r| tree.item_of(r) == 1).unwrap();
        // rank_counts come from the raw frequency pass which counts
        // occurrences, but the inserted paths dedup.
        assert!(tree.rank_count(rank_of_1) >= 2);
        assert!(tree.single_path().is_some());
    }

    #[test]
    fn weighted_transactions_accumulate() {
        let bags = [vec![1u32, 2]];
        let tree = FpTree::build(bags.iter().map(|b| (b.as_slice(), 5)), 2);
        assert_eq!(tree.rank_count(0), 5);
    }
}
