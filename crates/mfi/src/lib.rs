//! # yv-mfi
//!
//! Frequent-itemset mining for MFIBlocks: an FP-tree / FP-Growth
//! implementation with direct **maximal** frequent itemset extraction
//! (FPMax-style pruning), plus the frequent-item pruning used by the
//! performance study of Section 6.3.
//!
//! The paper uses Borgelt's FP-Growth [6] to mine MFIs (maximal frequent
//! itemsets, Section 4.1.1): an itemset `I` is *frequent* when at least
//! `minsup` records contain it, and *maximal* when no frequent strict
//! superset exists. MFIBlocks mines MFIs from the still-uncovered records at
//! each `minsup` level and turns their supports into candidate blocks.
//!
//! Direct maximal mining matters here: duplicate records share most of
//! their items, so enumerating *all* frequent itemsets would blow up
//! exponentially in the shared-item count, while the set of maximal ones
//! stays small.
//!
//! ```
//! use yv_mfi::mine_maximal;
//!
//! // Two records share {1, 2, 3}; a third shares only {1}.
//! let bags = vec![vec![1, 2, 3, 4], vec![1, 2, 3, 5], vec![1, 6]];
//! let mfis = mine_maximal(&bags, 2);
//! assert_eq!(mfis.len(), 1);
//! assert_eq!(mfis[0].items, vec![1, 2, 3]);
//! assert_eq!(mfis[0].support, 2);
//! ```

pub mod fpgrowth;
pub mod fptree;
pub mod maximal;
pub mod prune;

pub use fpgrowth::mine_frequent;
pub use maximal::{mine_maximal, Itemset};
pub use prune::{item_frequencies, prune_common_items, prune_top_frequent};
