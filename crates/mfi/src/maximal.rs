//! Direct maximal frequent itemset mining (FPMax-style).
//!
//! An itemset is maximal when it is frequent and no frequent strict
//! superset exists. The miner follows the FP-Growth recursion but maintains
//! the running MFI set and applies two prunings:
//!
//! 1. **single-path shortcut** — a conditional tree that degenerates to one
//!    path contributes exactly one candidate per distinct count level, so
//!    identical duplicate records never cause subset enumeration;
//! 2. **head subsumption** — before descending into a conditional tree, the
//!    largest itemset that branch could produce (`prefix ∪ all items in the
//!    conditional tree`) is checked against the MFI set; subsumed branches
//!    are skipped wholesale.

use crate::fptree::FpTree;

/// A mined itemset: sorted item ids and the number of supporting
/// transactions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Itemset {
    pub items: Vec<u32>,
    pub support: u64,
}

impl Itemset {
    /// True when `self.items ⊆ other` (both sorted).
    #[must_use]
    pub fn is_subset_of(&self, other: &[u32]) -> bool {
        is_subset(&self.items, other)
    }
}

/// Subset test over two sorted slices.
#[must_use]
pub fn is_subset(small: &[u32], big: &[u32]) -> bool {
    debug_assert!(small.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(big.windows(2).all(|w| w[0] < w[1]));
    let mut j = 0;
    for &x in small {
        while j < big.len() && big[j] < x {
            j += 1;
        }
        if j >= big.len() || big[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// The running MFI collection with posting-list-indexed subsumption
/// checks: `postings[item]` lists the recorded sets containing `item`, so
/// a subsumption test only inspects sets sharing the candidate's rarest
/// item instead of the whole collection (large minsup-2 runs record
/// hundreds of thousands of MFIs).
#[derive(Debug, Default)]
struct MfiSet {
    /// Tombstoned storage: superseded sets become `None`.
    slots: Vec<Option<Itemset>>,
    postings: std::collections::HashMap<u32, Vec<u32>>,
    live: usize,
}

impl MfiSet {
    /// True when `candidate` (sorted) is a subset of an already-recorded
    /// MFI.
    fn subsumed(&self, candidate: &[u32]) -> bool {
        let Some(rarest) = candidate
            .iter()
            .min_by_key(|i| self.postings.get(i).map_or(0, Vec::len))
        else {
            return false; // the empty set is never recorded
        };
        let Some(list) = self.postings.get(rarest) else {
            return false;
        };
        list.iter().any(|&idx| {
            self.slots[idx as usize]
                .as_ref()
                .is_some_and(|m| is_subset(candidate, &m.items))
        })
    }

    /// Insert a candidate known to be frequent; drops recorded sets it
    /// strictly contains. No-op when subsumed.
    fn insert(&mut self, items: Vec<u32>, support: u64) {
        if self.subsumed(&items) {
            return;
        }
        // Tombstone subsets of the new set: any such subset shares the new
        // set's first item or... every item of the subset is in `items`,
        // so scanning the postings of each new item finds them all.
        for &item in &items {
            if let Some(list) = self.postings.get(&item) {
                for &idx in list {
                    let slot = &mut self.slots[idx as usize];
                    if slot.as_ref().is_some_and(|m| is_subset(&m.items, &items)) {
                        *slot = None;
                        self.live -= 1;
                    }
                }
            }
        }
        let idx = self.slots.len() as u32;
        for &item in &items {
            self.postings.entry(item).or_default().push(idx);
        }
        self.slots.push(Some(Itemset { items, support }));
        self.live += 1;
    }

    fn into_sets(self) -> Vec<Itemset> {
        self.slots.into_iter().flatten().collect()
    }
}

/// Mine all maximal frequent itemsets with support ≥ `minsup` from the
/// given item bags. Items within each returned set are sorted; the result
/// is sorted for determinism. Singleton maximal itemsets are included
/// (they arise when a frequent item co-occurs with nothing frequently).
#[must_use]
pub fn mine_maximal(bags: &[Vec<u32>], minsup: u64) -> Vec<Itemset> {
    assert!(minsup >= 1, "minsup must be at least 1");
    let tree = FpTree::build(bags.iter().map(|b| (b.as_slice(), 1)), minsup);
    let mut mfis = MfiSet::default();
    fpmax(&tree, &mut Vec::new(), minsup, &mut mfis);
    let mut out = mfis.into_sets();
    out.sort();
    out
}

fn fpmax(tree: &FpTree, prefix: &mut Vec<u32>, minsup: u64, mfis: &mut MfiSet) {
    if tree.is_empty() {
        return;
    }
    if let Some(path) = tree.single_path() {
        // Single path: every count level yields one candidate — the prefix
        // plus the path items down to that level. Only the deepest frequent
        // level can be maximal for this branch, plus shallower levels are
        // subsets, so one candidate suffices: all path nodes are already
        // ≥ minsup (infrequent items never enter the tree).
        let mut items = prefix.clone();
        items.extend(path.iter().map(|&(rank, _)| tree.item_of(rank)));
        items.sort_unstable();
        let support = path.last().map_or(0, |&(_, c)| c);
        if !items.is_empty() {
            mfis.insert(items, support);
        }
        return;
    }
    for rank in tree.ranks_ascending_frequency() {
        let item = tree.item_of(rank);
        let support = tree.rank_count(rank);
        prefix.push(item);
        let base = tree.conditional_base(rank);
        if base.is_empty() {
            let mut items = prefix.clone();
            items.sort_unstable();
            mfis.insert(items, support);
        } else {
            let cond = FpTree::build(base.iter().map(|(p, w)| (p.as_slice(), *w)), minsup);
            if cond.is_empty() {
                let mut items = prefix.clone();
                items.sort_unstable();
                mfis.insert(items, support);
            } else {
                // Head pruning: the largest set this branch can produce.
                let mut head = prefix.clone();
                head.extend((0..cond.n_ranks()).map(|r| cond.item_of(r)));
                head.sort_unstable();
                head.dedup();
                if !mfis.subsumed(&head) {
                    fpmax(&cond, prefix, minsup, mfis);
                }
            }
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::mine_frequent;
    use std::collections::BTreeSet;

    /// Reference maximality filter over the complete FI list.
    fn maximal_reference(bags: &[Vec<u32>], minsup: u64) -> Vec<Itemset> {
        let all = mine_frequent(bags, minsup);
        let sets: Vec<BTreeSet<u32>> =
            all.iter().map(|s| s.items.iter().copied().collect()).collect();
        let mut out: Vec<Itemset> = all
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                let me: BTreeSet<u32> = s.items.iter().copied().collect();
                !sets.iter().enumerate().any(|(j, other)| *i != j && me.is_subset(other) && me != *other)
            })
            .map(|(_, s)| s.clone())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn doc_example() {
        let bags = vec![vec![1, 2, 3, 4], vec![1, 2, 3, 5], vec![1, 6]];
        let mfis = mine_maximal(&bags, 2);
        assert_eq!(mfis, vec![Itemset { items: vec![1, 2, 3], support: 2 }]);
    }

    #[test]
    fn identical_bags_do_not_explode() {
        // 100 identical bags of 20 items: all-FI mining would enumerate
        // 2^20 sets; maximal mining must return exactly one.
        let bag: Vec<u32> = (0..20).collect();
        let bags = vec![bag.clone(); 100];
        let mfis = mine_maximal(&bags, 2);
        assert_eq!(mfis.len(), 1);
        assert_eq!(mfis[0].items, bag);
        assert_eq!(mfis[0].support, 100);
    }

    #[test]
    fn paper_table2_example() {
        // Records 3 and 4 of Table 2 share {F Yitzhak, L Postel, G 0};
        // encode items as ids.
        // r1: YB1927, P1 Lubaczow, ..., F Avraham, L Kesler
        // r2: P1 Lwow, ..., F Avraham, L Apoteker, G0
        // r3: P1 Antopol, ..., F Yitzhak, F Avram, L Postel, G0, P4 Poland
        // r4: P4 Poland, F Yitzhak, L Postel, G0
        let (f_yitzhak, l_postel, g0, p4_poland, f_avraham) = (1, 2, 3, 4, 5);
        let bags = vec![
            vec![f_avraham, 10, 11, 12, p4_poland],
            vec![f_avraham, 13, 14, g0, p4_poland],
            vec![f_yitzhak, 20, l_postel, g0, p4_poland],
            vec![f_yitzhak, l_postel, g0, p4_poland],
        ];
        let mfis = mine_maximal(&bags, 2);
        // {F Yitzhak, L Postel, G 0, P4 Poland} is maximal with support 2.
        assert!(mfis
            .iter()
            .any(|m| m.items == vec![f_yitzhak, l_postel, g0, p4_poland] && m.support == 2));
        // No mined set strictly contains another.
        for (i, a) in mfis.iter().enumerate() {
            for (j, b) in mfis.iter().enumerate() {
                if i != j {
                    assert!(!is_subset(&a.items, &b.items), "{a:?} subset of {b:?}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_reference_on_fixed_inputs() {
        let bags = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![2, 3, 4],
            vec![1, 2, 3, 4],
            vec![5, 6],
            vec![5, 6, 7],
        ];
        for minsup in 1..=4 {
            assert_eq!(
                mine_maximal(&bags, minsup),
                maximal_reference(&bags, minsup),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn is_subset_basics() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1], &[]));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn agrees_with_reference(
                bags in proptest::collection::vec(
                    proptest::collection::vec(0u32..10, 0..7), 0..10),
                minsup in 1u64..4,
            ) {
                prop_assert_eq!(
                    mine_maximal(&bags, minsup),
                    maximal_reference(&bags, minsup)
                );
            }

            #[test]
            fn results_are_mutually_incomparable(
                bags in proptest::collection::vec(
                    proptest::collection::vec(0u32..12, 0..8), 0..12),
                minsup in 2u64..4,
            ) {
                let mfis = mine_maximal(&bags, minsup);
                for (i, a) in mfis.iter().enumerate() {
                    for (j, b) in mfis.iter().enumerate() {
                        if i != j {
                            prop_assert!(!is_subset(&a.items, &b.items));
                        }
                    }
                }
            }

            #[test]
            fn supports_are_correct(
                bags in proptest::collection::vec(
                    proptest::collection::vec(0u32..10, 0..7), 0..10),
                minsup in 1u64..4,
            ) {
                for mfi in mine_maximal(&bags, minsup) {
                    let true_support = bags
                        .iter()
                        .filter(|bag| {
                            let mut b = (*bag).clone();
                            b.sort_unstable();
                            b.dedup();
                            is_subset(&mfi.items, &b)
                        })
                        .count() as u64;
                    prop_assert_eq!(mfi.support, true_support);
                    prop_assert!(mfi.support >= minsup);
                }
            }
        }
    }
}
