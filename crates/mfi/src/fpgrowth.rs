//! Plain FP-Growth: enumerate *all* frequent itemsets.
//!
//! Used for cross-checking the maximal miner and for small workloads; the
//! blocking pipeline itself uses [`crate::mine_maximal`], because complete
//! enumeration is exponential in the number of items shared by duplicate
//! records.

use crate::fptree::FpTree;
use crate::maximal::Itemset;

/// Mine all frequent itemsets (support ≥ `minsup`) from the given item
/// bags. Returns itemsets with sorted items; the empty itemset is not
/// reported.
#[must_use]
pub fn mine_frequent(bags: &[Vec<u32>], minsup: u64) -> Vec<Itemset> {
    assert!(minsup >= 1, "minsup must be at least 1");
    let tree = FpTree::build(bags.iter().map(|b| (b.as_slice(), 1)), minsup);
    let mut out = Vec::new();
    grow(&tree, &mut Vec::new(), minsup, &mut out);
    for set in &mut out {
        set.items.sort_unstable();
    }
    out.sort();
    out
}

fn grow(tree: &FpTree, prefix: &mut Vec<u32>, minsup: u64, out: &mut Vec<Itemset>) {
    for rank in tree.ranks_ascending_frequency() {
        let support = tree.rank_count(rank);
        debug_assert!(support >= minsup);
        prefix.push(tree.item_of(rank));
        out.push(Itemset { items: prefix.clone(), support });
        let base = tree.conditional_base(rank);
        if !base.is_empty() {
            let cond = FpTree::build(base.iter().map(|(p, w)| (p.as_slice(), *w)), minsup);
            if !cond.is_empty() {
                grow(&cond, prefix, minsup, out);
            }
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeSet, HashMap};

    /// Brute-force reference: count support of every itemset appearing as a
    /// subset of some bag (exponential; test inputs are tiny).
    fn brute_force(bags: &[Vec<u32>], minsup: u64) -> Vec<Itemset> {
        let mut counts: HashMap<BTreeSet<u32>, u64> = HashMap::new();
        for bag in bags {
            let set: Vec<u32> = {
                let mut b = bag.clone();
                b.sort_unstable();
                b.dedup();
                b
            };
            let n = set.len();
            assert!(n <= 12, "test bag too large for brute force");
            for mask in 1u32..(1 << n) {
                let subset: BTreeSet<u32> =
                    (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| set[i]).collect();
                *counts.entry(subset).or_insert(0) += 1;
            }
        }
        let mut out: Vec<Itemset> = counts
            .into_iter()
            .filter(|&(_, c)| c >= minsup)
            .map(|(s, c)| Itemset { items: s.into_iter().collect(), support: c })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn matches_brute_force_on_fixed_input() {
        let bags = vec![
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![1, 3, 4],
            vec![2, 3, 4],
            vec![1, 2, 3, 4],
        ];
        for minsup in 1..=5 {
            let fast = mine_frequent(&bags, minsup);
            let slow = brute_force(&bags, minsup);
            assert_eq!(fast, slow, "minsup={minsup}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(mine_frequent(&[], 1).is_empty());
        assert!(mine_frequent(&[vec![]], 1).is_empty());
    }

    #[test]
    fn single_bag_minsup_one() {
        let out = mine_frequent(&[vec![1, 2]], 1);
        // Subsets: {1}, {2}, {1,2}.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.support == 1));
    }

    #[test]
    #[should_panic(expected = "minsup must be at least 1")]
    fn zero_minsup_panics() {
        let _ = mine_frequent(&[vec![1]], 0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn agrees_with_brute_force(
                bags in proptest::collection::vec(
                    proptest::collection::vec(0u32..8, 0..6), 0..8),
                minsup in 1u64..4,
            ) {
                let fast = mine_frequent(&bags, minsup);
                let slow = brute_force(&bags, minsup);
                prop_assert_eq!(fast, slow);
            }
        }
    }
}
