//! Frequent-item pruning (Section 6.3).
//!
//! The performance study prunes the 0.03% most frequent items before
//! mining, following [18]: ultra-frequent items (country names, genders)
//! generate enormous conditional trees while contributing no discriminative
//! power to blocks.

use std::collections::{HashMap, HashSet};

/// Occurrence count of every item across the bags.
#[must_use]
pub fn item_frequencies(bags: &[Vec<u32>]) -> HashMap<u32, u64> {
    let mut freq = HashMap::new();
    for bag in bags {
        for &item in bag {
            *freq.entry(item).or_insert(0u64) += 1;
        }
    }
    freq
}

/// Remove the `fraction` most frequent items (by distinct-item count,
/// rounded up when the fraction selects a positive number of items) from
/// every bag, returning the pruned bags and the set of pruned items.
///
/// `fraction` is expressed as a proportion of the *distinct item
/// vocabulary* — the paper's ".03% most frequent items" is
/// `fraction = 0.0003`.
#[must_use]
pub fn prune_top_frequent(bags: &[Vec<u32>], fraction: f64) -> (Vec<Vec<u32>>, HashSet<u32>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let freq = item_frequencies(bags);
    let k = ((freq.len() as f64) * fraction).ceil() as usize;
    let k = if fraction == 0.0 { 0 } else { k.max(1).min(freq.len()) };
    let mut by_freq: Vec<(u32, u64)> = freq.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let pruned: HashSet<u32> = by_freq.iter().take(k).map(|&(i, _)| i).collect();
    let new_bags = bags
        .iter()
        .map(|bag| bag.iter().copied().filter(|i| !pruned.contains(i)).collect())
        .collect();
    (new_bags, pruned)
}

/// Remove items occurring in more than `fraction` of the bags (e.g. 0.05
/// removes items present in over 5% of records). Scale-free variant of
/// [`prune_top_frequent`]: gender codes and country names explode mining
/// cost while contributing nothing to block quality, regardless of
/// vocabulary size.
#[must_use]
pub fn prune_common_items(bags: &[Vec<u32>], fraction: f64) -> (Vec<Vec<u32>>, HashSet<u32>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let cap = (bags.len() as f64 * fraction).ceil() as u64;
    let freq = item_frequencies(bags);
    let pruned: HashSet<u32> =
        freq.into_iter().filter(|&(_, c)| c > cap).map(|(i, _)| i).collect();
    let new_bags = bags
        .iter()
        .map(|bag| bag.iter().copied().filter(|i| !pruned.contains(i)).collect())
        .collect();
    (new_bags, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_items_pruned_by_record_fraction() {
        let bags: Vec<Vec<u32>> = (0..10).map(|i| vec![1, 100 + i]).collect();
        // Item 1 is in 100% of bags; cap at 50%.
        let (out, pruned) = prune_common_items(&bags, 0.5);
        assert_eq!(pruned, HashSet::from([1]));
        assert!(out.iter().all(|b| !b.contains(&1)));
        // Nothing pruned at 100%.
        let (_, none) = prune_common_items(&bags, 1.0);
        assert!(none.is_empty());
    }

    #[test]
    fn frequencies_count_occurrences() {
        let bags = vec![vec![1, 2], vec![1], vec![1, 3]];
        let f = item_frequencies(&bags);
        assert_eq!(f[&1], 3);
        assert_eq!(f[&2], 1);
        assert_eq!(f.get(&9), None);
    }

    #[test]
    fn prunes_most_frequent() {
        let bags = vec![vec![1, 2], vec![1, 3], vec![1, 4], vec![1]];
        // 4 distinct items; 25% => 1 item pruned: item 1.
        let (pruned_bags, pruned) = prune_top_frequent(&bags, 0.25);
        assert_eq!(pruned, HashSet::from([1]));
        assert!(pruned_bags.iter().all(|b| !b.contains(&1)));
        assert_eq!(pruned_bags[3], Vec::<u32>::new());
    }

    #[test]
    fn tiny_fraction_still_prunes_one() {
        let bags = vec![vec![1, 2], vec![1, 3]];
        let (_, pruned) = prune_top_frequent(&bags, 0.0003);
        assert_eq!(pruned.len(), 1);
        assert!(pruned.contains(&1));
    }

    #[test]
    fn zero_fraction_prunes_nothing() {
        let bags = vec![vec![1, 2], vec![1, 3]];
        let (out, pruned) = prune_top_frequent(&bags, 0.0);
        assert!(pruned.is_empty());
        assert_eq!(out, bags);
    }

    #[test]
    fn full_fraction_prunes_everything() {
        let bags = vec![vec![1, 2], vec![3]];
        let (out, pruned) = prune_top_frequent(&bags, 1.0);
        assert_eq!(pruned.len(), 3);
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn empty_input_is_safe() {
        let (out, pruned) = prune_top_frequent(&[], 0.5);
        assert!(out.is_empty());
        assert!(pruned.is_empty());
    }
}
