#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, audit. Run from the repository
# root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# cast_possible_truncation is a workspace-level warn (see [workspace.lints])
# surfaced for review but not yet a build failure; everything else is -D.
cargo clippy --workspace --all-targets -- -D warnings -A clippy::cast_possible_truncation

# Workspace invariant audit (determinism / panic-freedom / score hygiene —
# DESIGN.md §10). The workspace itself must be clean...
cargo run -q -p yv-audit -- check

# ...and the auditor must still catch seeded violations: every known-bad
# fixture has to fail the check, or the gate is dead.
for fixture in crates/audit/fixtures/bad_*.rs; do
    if cargo run -q -p yv-audit -- check "$fixture" > /dev/null; then
        echo "audit gate failure: $fixture passed but must be detected" >&2
        exit 1
    fi
done
echo "audit gate: workspace clean, all seeded violations detected"

# Observability smoke test: `yv block --trace-json` must emit a valid
# Chrome-trace file carrying the span taxonomy (DESIGN.md §11).
trace_file="$(mktemp -t yv-trace-XXXXXX.json)"
trap 'rm -f "$trace_file"' EXIT
cargo run -q --release -p yv-cli --bin yv -- \
    block --records 300 --trace-json "$trace_file" > /dev/null
python3 - "$trace_file" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e["name"] for e in events if e.get("ph") == "X"}
for span in ["blocking", "iteration", "mine", "score_blocks", "ng_filter"]:
    assert span in names, f"trace is missing span {span!r}: {sorted(names)}"
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert "candidate_pairs" in counters, f"missing counter: {sorted(counters)}"
print(f"trace smoke test: {len(events)} events, span taxonomy present")
PYEOF
