#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, audit. Run from the repository
# root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# cast_possible_truncation is a workspace-level warn (see [workspace.lints])
# surfaced for review but not yet a build failure; everything else is -D.
cargo clippy --workspace --all-targets -- -D warnings -A clippy::cast_possible_truncation

# Workspace invariant audit (determinism / panic-freedom / score hygiene /
# lock discipline / privacy taint / cast safety — DESIGN.md §10). The
# workspace itself must be clean, and the parallel run must finish inside
# a generous wall-time bound (the incremental cache plus scoped threads
# are what keep this gate cheap).
audit_started="$(date +%s)"
cargo run -q -p yv-audit -- check --jobs 8
audit_elapsed="$(( $(date +%s) - audit_started ))"
if [ "$audit_elapsed" -gt 120 ]; then
    echo "audit gate failure: workspace check took ${audit_elapsed}s (>120s)" >&2
    exit 1
fi

# ...and the auditor must still catch seeded violations: every known-bad
# fixture has to fail the check, or the gate is dead...
for fixture in crates/audit/fixtures/bad_*.rs; do
    if cargo run -q -p yv-audit -- check "$fixture" > /dev/null; then
        echo "audit gate failure: $fixture passed but must be detected" >&2
        exit 1
    fi
done
# ...while every known-good twin passes — the rules must separate the
# pairs, not blanket-fail the directory.
for fixture in crates/audit/fixtures/good_*.rs; do
    if ! cargo run -q -p yv-audit -- check "$fixture" > /dev/null; then
        echo "audit gate failure: $fixture failed but must be clean" >&2
        exit 1
    fi
done

# Stale-baseline gate: an accepted finding that no longer occurs must
# fail the check until the baseline is regenerated — the committed
# baseline can only shrink deliberately, never rot.
stale_baseline="$(mktemp -t yv-audit-baseline-XXXXXX)"
cp audit.baseline "$stale_baseline"
echo "P1 deadbeefdeadbeef crates/ghost/src/lib.rs" >> "$stale_baseline"
if cargo run -q -p yv-audit -- check --no-cache --baseline "$stale_baseline" \
        > /dev/null 2>&1; then
    rm -f "$stale_baseline"
    echo "audit gate failure: a stale baseline entry passed the check" >&2
    exit 1
fi
rm -f "$stale_baseline"
# The windowed-telemetry surfaces must stay clean under the strictest
# rules: S1 (clocks are injected, never read ambiently) on the rollup
# rings and N1 (no raw names reach a sink) on the persisted frames —
# and the wire-protocol surfaces (frame codec + client) under C1
# (cast safety on length/count fields read off the network).
cargo run -q -p yv-audit -- check \
    crates/obs/src/window.rs crates/store/src/telemetry.rs crates/store/src/server.rs \
    crates/store/src/frame.rs crates/store/src/client.rs
echo "audit gate: workspace clean in ${audit_elapsed}s, seeded violations detected, good twins pass, stale baseline refused, telemetry+wire files pass S1/N1/C1"

# Observability smoke test: `yv block --trace-json` must emit a valid
# Chrome-trace file carrying the span taxonomy (DESIGN.md §11).
trace_file="$(mktemp -t yv-trace-XXXXXX.json)"
serve_log="$(mktemp -t yv-serve-XXXXXX.log)"
store_dir="$(mktemp -d -t yv-ci-store-XXXXXX)"
bench_base="$(mktemp -t yv-bench-base-XXXXXX.json)"
bench_slow="$(mktemp -t yv-bench-slow-XXXXXX.json)"
shard_log_fill="$(mktemp -t yv-shard-fill-XXXXXX.log)"
shard_log_replay="$(mktemp -t yv-shard-replay-XXXXXX.log)"
trap 'rm -f "$trace_file" "$serve_log" "$bench_base" "$bench_slow" "$shard_log_fill" "$shard_log_replay"; rm -rf "$store_dir"' EXIT
cargo run -q --release -p yv-cli --bin yv -- \
    block --records 300 --trace-json "$trace_file" > /dev/null
python3 - "$trace_file" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e["name"] for e in events if e.get("ph") == "X"}
for span in ["blocking", "iteration", "mine", "score_blocks", "ng_filter"]:
    assert span in names, f"trace is missing span {span!r}: {sorted(names)}"
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert "candidate_pairs" in counters, f"missing counter: {sorted(counters)}"
print(f"trace smoke test: {len(events)} events, span taxonomy present")
PYEOF

# Metrics exposition smoke test: serve a small store with the Prometheus
# scrape sidecar, a 1µs slow-request threshold, an (unmeetable) 1µs SLO
# on QUERY over a 12-second window, and persisted telemetry; drive a
# QUERY burst, scrape GET /metrics, validate the text format, and walk
# the SLO through ok → firing → ok (DESIGN.md §11). Both listeners bind
# port 0; the printed startup lines carry the real ports.
cargo run -q --release -p yv-cli --bin yv -- \
    serve --dir "$store_dir/store" --records 300 \
    --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:0 --slow-us 1 \
    --telemetry-dir "$store_dir/telemetry" --slo 'query:p99<1/12' \
    > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 150); do
    grep -q "^metrics: " "$serve_log" && break
    sleep 0.2
done
python3 - "$serve_log" <<'PYEOF'
import re, socket, sys, time, urllib.request

log = open(sys.argv[1]).read()
addr = re.search(r"on (127\.0\.0\.1:\d+) with \d+ workers", log).group(1)
url = re.search(r"^metrics: (http://\S+)", log, re.M).group(1)
host, port = addr.rsplit(":", 1)

sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", newline="\n")

def request(line):
    f.write(line + "\n")
    f.flush()
    lines = []
    while True:
        got = f.readline()
        assert got, "server closed mid-response"
        if got.rstrip("\n") == ".":
            return lines
        lines.append(got.rstrip("\n"))

def scrape():
    return urllib.request.urlopen(url, timeout=10).read().decode()

def gauge(body, name):
    rows = [l for l in body.splitlines() if l.startswith(name + " ")]
    assert rows, f"missing {name}"
    return int(rows[0].split()[-1])

# Before any QUERY traffic the SLO is clean: state 0 (ok).
assert gauge(scrape(), "yv_slo_query_state") == 0

resp = request("QUERY first=Abramo")
assert resp[0].startswith("OK"), resp[:1]
# A burst of queries, then wait out the 1-second bucket boundary so the
# burst lands in *closed* windows.
for _ in range(8):
    assert request("QUERY first=Abramo")[0].startswith("OK")
time.sleep(1.4)

# HISTORY after the burst: the recent window holds every query, while a
# metric that saw no traffic reports an empty window.
hist = request("HISTORY query window=60")
assert hist[0].startswith("OK history metric=query"), hist[0]
window = [l for l in hist[1:] if l.startswith("WINDOW ")][0]
recent = int(re.search(r"count=(\d+)", window).group(1))
assert recent >= 9, f"recent window lost the burst: {window!r}"
assert any(l.startswith("SLO metric=query") for l in hist), hist
assert any(l.startswith("BUCKET ") for l in hist), hist
stale = request("HISTORY resolve window=60")
stale_window = [l for l in stale[1:] if l.startswith("WINDOW ")][0]
assert "count=0" in stale_window, f"idle metric reports traffic: {stale_window!r}"

body = scrape()
for kind in ["query", "resolve", "add", "stats", "metrics", "top", "trace",
             "history", "snapshot", "shutdown"]:
    needle = f'yv_cmd_{kind}_latency_us_bucket{{le="+Inf"}}'
    assert needle in body, f"missing histogram series for {kind}"
count = [l for l in body.splitlines() if l.startswith("yv_cmd_query_latency_us_count ")]
assert count and int(count[0].split()[-1]) >= 1, count
for name in ["yv_store_records", "yv_store_wal_bytes", "yv_store_postings",
             "yv_alloc_live_bytes", "yv_alloc_peak_bytes",
             "yv_trace_ring_capacity", "yv_trace_ring_occupancy",
             "yv_trace_ring_captured_total", "yv_trace_ring_evicted_total",
             "yv_trace_ring_sampled_total", "yv_trace_last_slow_id",
             "yv_telemetry_log_bytes", "yv_telemetry_frames_total",
             "yv_telemetry_log_rotations_total", "yv_slow_log_rotations",
             "yv_window_parse_errors_60s", "yv_slo_query_threshold_us"]:
    assert any(l.startswith(name + " ") for l in body.splitlines()), f"missing {name}"
# Every query breaches the injected 1µs threshold, so both burn windows
# are saturated and the SLO fires (state 2).
assert gauge(body, "yv_slo_query_state") == 2, "SLO did not fire under 1us threshold"
assert gauge(body, "yv_slo_query_burn_long_pct") >= 100
assert gauge(body, "yv_telemetry_frames_total") >= 1, "no telemetry frames persisted"
# --slow-us 1 makes the QUERY above slow, so the tail sampler must have
# retained it and published its id.
captured = [l for l in body.splitlines() if l.startswith("yv_trace_ring_captured_total ")]
assert captured and int(captured[0].split()[-1]) >= 1, captured
last_slow = [l for l in body.splitlines() if l.startswith("yv_trace_last_slow_id ")]
assert last_slow and int(last_slow[0].split()[-1]) != 0, last_slow
total = [l for l in body.splitlines() if l.startswith("yv_alloc_bytes_total ")]
assert total and int(total[0].split()[-1]) > 0, "counting allocator not installed"
sample = re.compile(r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? \d+$')
for line in body.splitlines():
    if line and not line.startswith("#"):
        assert sample.match(line), f"malformed sample line: {line!r}"

# Once the 12-second rule window drains, the SLO recovers: ok again.
time.sleep(13)
assert gauge(scrape(), "yv_slo_query_state") == 0, "SLO did not recover to ok"

resp = request("SHUTDOWN")
assert resp[0].startswith("OK"), resp
print(f"metrics smoke test: scrape ok, {len(body.splitlines())} exposition lines,"
      f" HISTORY count={recent}, SLO walked ok -> firing -> ok")
PYEOF
wait "$serve_pid"
# With --telemetry-dir the slow log moves to a size-capped JSONL file; the
# 1µs threshold makes every request slow, so it must have fired there.
grep -q '"slow_request":true' "$store_dir/telemetry/slow.jsonl" || {
    echo "slow-request log never fired despite --slow-us 1" >&2
    exit 1
}
# ...and the closed buckets must have been persisted as telemetry frames.
if [ ! -s "$store_dir/telemetry/telemetry.yvt" ]; then
    echo "telemetry smoke test: telemetry.yvt missing or empty after shutdown" >&2
    exit 1
fi
echo "telemetry smoke test: slow.jsonl + telemetry.yvt persisted"

# Sharded-store smoke test (DESIGN.md §9, §13): bootstrap a 4-shard
# store, fire concurrent ADDs through the typed client over both
# transports (`yv load` text, then `yv load --binary` streaming
# BATCH_ADD frames), shut down (folding the per-shard WALs into the
# snapshot), restart on the same directory, and require the identical
# logical state back: same record count, same shard count, and the same
# query-battery digest — which must also be transport-independent.
serve_on_shard_dir() {
    cargo run -q --release -p yv-cli --bin yv -- \
        serve --dir "$store_dir/shards" --records 300 --shards 4 \
        --addr 127.0.0.1:0 > "$1" 2>&1 &
    shard_pid=$!
    for _ in $(seq 1 150); do
        grep -q "^serving " "$1" && break
        sleep 0.2
    done
    shard_addr="$(sed -n 's/^serving .* on \(127\.0\.0\.1:[0-9]*\) with .*/\1/p' "$1")"
    if [ -z "$shard_addr" ]; then
        echo "sharded smoke test: server never came up:" >&2
        cat "$1" >&2
        exit 1
    fi
    grep -q "4 shards" "$1" || {
        echo "sharded smoke test: store did not come up with 4 shards:" >&2
        cat "$1" >&2
        exit 1
    }
}
serve_on_shard_dir "$shard_log_fill"
fill="$(cargo run -q --release -p yv-cli --bin yv -- \
    load --addr "$shard_addr" --adds 24 --threads 4)"
# Fuzzy-resolution smoke test (DESIGN.md §12): the load battery planted
# "Levi" records; a misspelled RESOLVE must surface that entity in the
# top 3 ranked candidates, and k=0 misuse must be refused with a typed
# protocol error (nonzero exit).
resolve_out="$(cargo run -q --release -p yv-cli --bin yv -- \
    resolve --addr "$shard_addr" --name Lewi --k 3)"
grep -q "levi" <<< "$resolve_out" || {
    echo "resolve smoke test: 'Lewi' did not surface the levi entity in the" \
        "top 3: $resolve_out" >&2
    exit 1
}
if cargo run -q --release -p yv-cli --bin yv -- \
    resolve --addr "$shard_addr" --name Lewi --k 0 > /dev/null 2>&1; then
    echo "resolve smoke test: k=0 must be refused as a protocol error" >&2
    exit 1
fi
echo "resolve smoke test: misspelled RESOLVE ranked the gold entity, k=0 refused"
# Trace smoke test (DESIGN.md §11): every RESOLVE hands back a trace id
# on its status line; TRACE <id> must replay the accept→fan-out→merge
# span tree, the fan-out must include the shard that owns the queried
# name (fnv1a64(lowercase last) % shards — the routing rule), and the
# raw name must never appear in the trace.
python3 - "$shard_addr" <<'PYEOF'
import socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", newline="\n")

def request(line):
    f.write(line + "\n")
    f.flush()
    lines = []
    while True:
        got = f.readline()
        assert got, "server closed mid-response"
        if got.rstrip("\n") == ".":
            return lines
        lines.append(got.rstrip("\n"))

status = request("RESOLVE Levi k=3")[0]
assert status.startswith("OK"), status
token = [t for t in status.split() if t.startswith("trace=")]
assert token, f"RESOLVE status line carries no trace id: {status!r}"
trace_id = token[0].split("=", 1)[1]
assert trace_id != "0" * 16, "trace ids must never be zero"

def fnv1a64(data):
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h

owner = fnv1a64(b"levi") % 4
lines = request(f"TRACE {trace_id}")
assert lines[0].startswith(f"OK trace={trace_id}"), lines[0]
spans = [l for l in lines[1:] if l.lstrip().startswith("SPAN ")]
names = [s.split()[1].split("=", 1)[1] for s in spans]
for name in ["accept", "parse", "shard_fanout", "shard", "merge", "reply"]:
    assert name in names, f"span tree missing {name!r}: {names}"
assert any(f"shard={owner}" in s.split() for s in spans), \
    f"no SPAN names owning shard {owner}: {spans}"
assert "Levi" not in "\n".join(lines), "raw query name leaked into the trace"
print(f"trace smoke test: trace {trace_id} replays {len(spans)} spans,"
      f" owner shard {owner} in the fan-out")
PYEOF
# Binary wire smoke test (DESIGN.md §13): one socket sends the HELLO
# line and upgrades to checksummed binary frames (STATS, then QUERY);
# a plain-text session on a second socket keeps working before, during
# and after — the two transports coexist on one server, and the binary
# QUERY block must be byte-identical to the text one (modulo the
# per-request trace id).
python3 - "$shard_addr" <<'PYEOF'
import re, socket, struct, sys

host, port = sys.argv[1].rsplit(":", 1)

def fnv1a64(data):
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h

def frame(tag, payload=b""):
    return (bytes([tag]) + struct.pack("<I", len(payload)) + payload
            + struct.pack("<Q", fnv1a64(bytes([tag]) + payload)))

def read_exact(sock, n):
    buf = b""
    while len(buf) < n:
        got = sock.recv(n - len(buf))
        assert got, "server closed mid-frame"
        buf += got
    return buf

def read_block(sock):
    tag = read_exact(sock, 1)[0]
    assert tag == 0x20, f"expected BLOCK frame, got tag {tag:#04x}"
    (length,) = struct.unpack("<I", read_exact(sock, 4))
    payload = read_exact(sock, length)
    (checksum,) = struct.unpack("<Q", read_exact(sock, 8))
    assert checksum == fnv1a64(bytes([tag]) + payload), "frame checksum mismatch"
    (strlen,) = struct.unpack("<I", payload[:4])
    assert strlen == length - 4, "BLOCK string length disagrees with payload"
    return payload[4:].decode()

def opt_str(value):
    if value is None:
        return b"\x00"
    raw = value.encode()
    return b"\x01" + struct.pack("<I", len(raw)) + raw

# Plain-text session first: capture the reference QUERY block.
text = socket.create_connection((host, int(port)), timeout=10)
tf = text.makefile("rw", newline="\n")

def text_request(line):
    tf.write(line + "\n")
    tf.flush()
    lines = []
    while True:
        got = tf.readline()
        assert got, "server closed mid-response"
        lines.append(got)
        if got == ".\n":
            return "".join(lines)

text_block = text_request("QUERY first=Abramo")
assert text_block.startswith("OK"), text_block

# Second socket: HELLO upgrade, then binary frames.
bin_sock = socket.create_connection((host, int(port)), timeout=10)
bin_sock.sendall(b"HELLO proto=binary\n")
hello = b""
while not hello.endswith(b".\n"):
    got = bin_sock.recv(256)
    assert got, "server closed during HELLO"
    hello += got
assert hello == b"OK hello proto=binary\n.\n", hello

# Binary STATS (tag 0x04, empty payload).
bin_sock.sendall(frame(0x04))
stats = read_block(bin_sock)
assert stats.startswith("OK records="), stats

# Binary QUERY (tag 0x01) with the text protocol's defaults
# (similarity=0.88, certainty=0.0): same block as the text session.
payload = (opt_str("Abramo") + opt_str(None)
           + struct.pack("<d", 0.88) + struct.pack("<d", 0.0))
bin_sock.sendall(frame(0x01, payload))
bin_block = read_block(bin_sock)
strip = lambda s: re.sub(r" trace=[0-9a-f]{16}", "", s)
assert strip(bin_block) == strip(text_block), f"{bin_block!r} != {text_block!r}"

# The text session is still alive and unupgraded after the binary
# traffic on the other socket: same answer again.
again = text_request("QUERY first=Abramo")
assert strip(again) == strip(text_block), f"{again!r} != {text_block!r}"
text.close()
bin_sock.close()
hits = max(0, len(text_block.splitlines()) - 2)
print(f"binary wire smoke: HELLO upgrade ok, STATS/QUERY framed+checksummed,"
      f" text and binary blocks identical ({hits} hits), text session undisturbed")
PYEOF
# Binary pipelined load (DESIGN.md §13): 24 more records over HELLO-
# upgraded connections streaming BATCH_ADD frames, then the query
# battery over the same binary transport. A text battery on the same
# store state must print the identical digest — the battery digest is
# transport-independent (README promises CI enforces this).
fill_bin="$(cargo run -q --release -p yv-cli --bin yv -- \
    load --addr "$shard_addr" --adds 24 --threads 4 --binary --batch 8 \
    --book-base 950000)"
grep -q "via binary BATCH_ADD x8" <<< "$fill_bin" || {
    echo "binary load smoke test: the binary wire was not used: $fill_bin" >&2
    exit 1
}
fill_text="$(cargo run -q --release -p yv-cli --bin yv -- \
    load --addr "$shard_addr" --adds 0)"
cargo run -q --release -p yv-cli --bin yv -- \
    load --addr "$shard_addr" --shutdown > /dev/null
wait "$shard_pid"
serve_on_shard_dir "$shard_log_replay"
replay="$(cargo run -q --release -p yv-cli --bin yv -- \
    load --addr "$shard_addr" --shutdown)"
wait "$shard_pid"
for run in fill fill_bin fill_text replay; do
    grep -q "shards=4" <<< "${!run}" || {
        echo "sharded smoke test: $run run lost the shard count: ${!run}" >&2
        exit 1
    }
done
records_fill="$(grep -o 'records=[0-9]*' <<< "$fill")"
records_bin="$(grep -o 'records=[0-9]*' <<< "$fill_bin")"
records_replay="$(grep -o 'records=[0-9]*' <<< "$replay")"
if [ "$records_fill" != "records=324" ]; then
    echo "sharded smoke test: expected records=324 after the text ADDs," \
        "got '$records_fill'" >&2
    exit 1
fi
if [ "$records_bin" != "records=348" ] || [ "$records_replay" != "records=348" ]; then
    echo "sharded smoke test: expected records=348 after the binary load and" \
        "after restart, got '$records_bin' / '$records_replay'" >&2
    exit 1
fi
digest_bin="$(grep '^battery digest:' <<< "$fill_bin")"
digest_text="$(grep '^battery digest:' <<< "$fill_text")"
digest_replay="$(grep '^battery digest:' <<< "$replay")"
if [ -z "$digest_bin" ] || [ "$digest_bin" != "$digest_text" ]; then
    echo "sharded smoke test: battery digest depends on the transport:" \
        "binary '$digest_bin' vs text '$digest_text'" >&2
    exit 1
fi
if [ "$digest_bin" != "$digest_replay" ]; then
    echo "sharded smoke test: query battery diverged across restart:" \
        "'$digest_bin' vs '$digest_replay'" >&2
    exit 1
fi
echo "sharded smoke test: 24 text ADDs + 24 binary BATCH_ADDs over 4 shards," \
    "text/binary digests identical, restart identical ($digest_bin)"

# Shard-routing hash gate: fnv1a64 is the only hash the store may route
# records with (DESIGN.md §9) — a stray std/fast hasher would re-route
# records between builds or processes and silently split entities across
# shards. Comment lines are exempt so docs may *warn* about RandomState.
if grep -rn "DefaultHasher\|RandomState\|SipHasher\|ahash\|fxhash" crates/store/src \
        | grep -v ':[0-9]*: *//'; then
    echo "shard routing gate: a non-fnv hasher is referenced in yv-store" >&2
    exit 1
fi
grep -q "fnv1a64" crates/store/src/shard.rs || {
    echo "shard routing gate: shard.rs no longer routes with fnv1a64" >&2
    exit 1
}
grep -q 'ROUTING_RULE: &str = "fnv1a64' crates/store/src/shard.rs || {
    echo "shard routing gate: the manifest routing rule is no longer fnv1a64" >&2
    exit 1
}
echo "shard routing gate: fnv1a64 is the only routing hash"

# Bench regression gate: a run compared against itself must pass, and a
# synthetic 2x slowdown injected into its stage timings must fail the
# compare with a nonzero exit. The bench run itself includes the serve
# transport stage, which enforces the binary >= 3x text throughput
# floor in-process and must publish both req/s rates into the JSON
# (the `_per_s` rate class the compare gates on).
cargo run -q --release -p yv-cli --bin yv -- \
    bench --records 300 --out "$bench_base" > /dev/null
cargo run -q --release -p yv-cli --bin yv -- \
    bench --compare "$bench_base" --against "$bench_base" > /dev/null
python3 - "$bench_base" "$bench_slow" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
body = json.dumps(bench)
for rate in ["yv_serve_text_req_per_s", "yv_serve_binary_req_per_s"]:
    assert rate in body, f"bench JSON is missing the serve rate {rate}"
# Double every stage; the +100ms keeps tiny stages above the absolute
# floor so the gate trips deterministically at CI scale.
bench["stages_us"] = {k: v * 2 + 100_000 for k, v in bench["stages_us"].items()}
with open(sys.argv[2], "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
PYEOF
if cargo run -q --release -p yv-cli --bin yv -- \
    bench --compare "$bench_base" --against "$bench_slow" > /dev/null 2>&1; then
    echo "bench gate failure: injected 2x regression passed the compare" >&2
    exit 1
fi
echo "bench regression gate: self-comparison clean, injected regression detected"
