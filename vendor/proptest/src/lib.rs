//! Offline stub of `proptest` 1.x: enough of the API for this workspace's
//! property tests — the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! numeric-range and regex-literal strategies, and `collection::vec`.
//!
//! Differences from upstream: cases are generated from a fixed seed per
//! test (deterministic CI), there is **no shrinking** (the failing input is
//! printed as-is via the assertion message), and the string strategy
//! supports only the `[class]{m,n}` regex subset the tests use.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The body of a `proptest!` test returns this so `prop_assert!` can use
/// `?`-free early panics while matching upstream's spelling.
pub type TestCaseResult = Result<(), test_runner::TestCaseError>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The `proptest!` macro: each listed function becomes a `#[test]` running
/// its body over `config.cases` strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::Runner::new(config, stringify!($name));
                for _case in 0..runner.cases() {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), runner.rng());)+
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                fn $name($($p in $s),+) $body
            )+
        }
    };
}
