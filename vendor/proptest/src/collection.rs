//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing vectors whose length is drawn from `len` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

/// Mirrors `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.len.is_empty() { 0 } else { rng.gen_range(self.len.clone()) };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nested_vec_strategy() {
        let mut rng = StdRng::seed_from_u64(9);
        let strat = vec(vec(0u32..8, 0..6), 0..8);
        for _ in 0..100 {
            let bags = strat.generate(&mut rng);
            assert!(bags.len() < 8);
            for bag in &bags {
                assert!(bag.len() < 6);
                assert!(bag.iter().all(|&x| x < 8));
            }
        }
    }
}
