//! The `Strategy` trait and the numeric/range/string implementations.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values. Unlike upstream there is no value tree
/// or shrinking; `generate` directly produces one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String literals act as regex-subset strategies (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
