//! Regex-subset string generation: sequences of literal characters and
//! character classes `[a-z0-9éö ]`, each optionally repeated `{n}` or
//! `{m,n}`. This covers every string strategy in the workspace's tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in '{pattern}'"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let start = prev.take().expect("range start");
                            let end = chars.next().expect("range end");
                            assert!(start <= end, "bad range {start}-{end} in '{pattern}'");
                            for v in (start as u32)..=(end as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                        }
                        Some(other) => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in '{pattern}'");
                Atom::Class(set)
            }
            '\\' => Atom::Literal(chars.next().expect("escaped character")),
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

/// Generate one string matching the pattern.
#[must_use]
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse(pattern) {
        let n = if min == max { min } else { rng.gen_range(min..=max) };
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(*set.choose(rng).expect("non-empty class")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn mixed_classes_and_unicode() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let s = generate_from_pattern("[A-Za-zéö ]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.chars().count() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == 'é' || c == 'ö' || c == ' '));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        assert_eq!(generate_from_pattern("a{3}", &mut rng), "aaa");
    }
}
