//! Test-case driving: configuration and the per-test runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors `proptest::test_runner::ProptestConfig` (cases only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Upstream-compatible error type (unused by the stub's panicking asserts,
/// kept so signatures line up).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Drives one property test: a seeded generator plus the case budget.
#[derive(Debug)]
pub struct Runner {
    cases: u32,
    rng: StdRng,
}

impl Runner {
    /// The seed mixes the test name so distinct properties explore distinct
    /// streams while staying reproducible run-to-run.
    #[must_use]
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Runner { cases: config.cases, rng: StdRng::seed_from_u64(h) }
    }

    #[must_use]
    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
