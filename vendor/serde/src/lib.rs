//! Offline stub of `serde`. The workspace derives `Serialize`/`Deserialize`
//! on its data model as forward-compatibility markers, but never routes
//! bytes through serde — persistence is hand-rolled (`yv-adt::persist`,
//! `yv-store::snapshot`). This stub keeps the derive syntax compiling in a
//! container with no crates.io access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
