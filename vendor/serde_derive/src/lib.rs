//! Offline stub of `serde_derive`: the build container has no crates.io
//! access, and nothing in this workspace serializes through serde (the
//! derives are forward-compatibility markers; real persistence is
//! hand-rolled in `yv-adt::persist` and `yv-store`). The derive macros
//! therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
