//! Offline stub of `criterion` 0.5: runs each benchmark a fixed number of
//! iterations and prints mean wall-clock time. No statistics, warm-up, or
//! HTML reports — enough to keep `cargo bench` runnable and the bench
//! targets compiling in a container with no crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirrors `criterion::Criterion` (benchmark registry + runner).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    #[must_use]
    pub fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_owned(), sample_size: self.sample_size, _c: self }
    }
}

/// Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Mirrors `criterion::Bencher` — `iter` times the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed);
    }
    println!("bench {id:<56} best of {samples}: {best:>12.2?}");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
