//! Scoped threads mirroring `crossbeam::thread::scope`, backed by
//! `std::thread::scope`.

use std::any::Any;

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives the scope,
    /// like crossbeam's, so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
    }
}

/// Mirrors `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run a closure with a scope; all spawned threads are joined before this
/// returns. Unlike crossbeam, a panicking child propagates its panic when
/// the scope exits (via `std::thread::scope`) instead of surfacing it in
/// the returned `Result` — callers `.expect()` the result either way.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::scope(|scope| {
            for (o, &v) in out.chunks_mut(1).zip(&data) {
                scope.spawn(move |_| o[0] = v * 10);
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn join_returns_value() {
        let v = super::scope(|scope| scope.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(v, 42);
    }
}
