//! MPMC channel mirroring `crossbeam::channel::unbounded`: cloneable
//! senders *and* receivers, disconnect on last-handle drop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared.queue.lock().expect("channel lock").push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value or disconnection.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).expect("channel lock");
        }
    }

    /// Iterate until disconnection (mirrors `crossbeam::channel::Receiver::iter`).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_flow_in_order_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_with_no_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.iter().count());
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let local = rx.iter().count();
        let remote = h.join().unwrap();
        assert_eq!(local + remote, 100);
    }
}
