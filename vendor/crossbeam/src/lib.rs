//! Offline stub of `crossbeam` 0.8: `thread::scope` (delegating to
//! `std::thread::scope`, stable since Rust 1.63) and an MPMC
//! `channel::unbounded` built on `Mutex` + `Condvar`. API-compatible with
//! the subset this workspace uses; the real crate's lock-free internals are
//! not reproduced.

pub mod channel;
pub mod thread;
