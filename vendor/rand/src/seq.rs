//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let pool = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle permutes");
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
    }
}
