//! Offline stub of `rand` 0.8: the API subset this workspace uses
//! (`StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}`,
//! `SliceRandom::{choose, shuffle}`), backed by xoshiro256** seeded via
//! SplitMix64. Fully deterministic for a given seed — which is the property
//! every experiment in the repo relies on — but the stream differs from
//! upstream `rand`, so absolute generated datasets differ from runs made
//! with the real crate.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u8..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
