//! Offline stub of `parking_lot` 0.12: `Mutex` and `RwLock` with the
//! poison-free guard-returning API, implemented over `std::sync`. A
//! poisoned std lock (a thread panicked while holding it) is surfaced by
//! taking the data anyway, matching parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// Poison-free mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
