//! # yad-vashem-er
//!
//! A Rust reproduction of **"Multi-Source Uncertain Entity Resolution:
//! Transforming Holocaust Victim Reports into People"** (Sagi, Gal, Barkol,
//! Bergman, Avram — SIGMOD 2016 / Information Systems 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`records`] | `yv-records` | record model, item bags, pattern analysis |
//! | [`similarity`] | `yv-similarity` | string/geo/date measures, 48-feature extractor |
//! | [`mfi`] | `yv-mfi` | FP-Growth, maximal frequent itemsets |
//! | [`obs`] | `yv-obs` | structured tracing, counters, latency histograms |
//! | [`adt`] | `yv-adt` | alternating decision trees |
//! | [`blocking`] | `yv-blocking` | the MFIBlocks algorithm |
//! | [`baselines`] | `yv-baselines` | ten comparison blockers (Table 10) |
//! | [`fuzzy`] | `yv-fuzzy` | q-gram candidate index + ranked fuzzy resolution |
//! | [`datagen`] | `yv-datagen` | synthetic Names-Project data + tagging oracle |
//! | [`core`] | `yv-core` | the uncertain-ER pipeline, conditions, queries |
//! | [`store`] | `yv-store` | persistent resolution store + `yv serve` query server |
//! | [`eval`] | `yv-eval` | metrics + per-table/figure experiment harness |
//!
//! ## Quickstart
//!
//! ```
//! use yad_vashem_er::prelude::*;
//!
//! // A small synthetic multi-source dataset with ground truth.
//! let generated = GenConfig::random(400, 7).generate();
//!
//! // Soft blocking: possibly-overlapping candidate clusters.
//! let blocked = mfi_blocks(&generated.dataset, &MfiBlocksConfig::default());
//!
//! // Label some pairs (here: the simulated expert oracle) and train.
//! let tags = tag_pairs(&generated, &blocked.candidate_pairs, 1);
//! let labelled: Vec<_> = tags
//!     .iter()
//!     .filter_map(|t| t.simplified().map(|m| (t.a, t.b, m)))
//!     .collect();
//! let config = PipelineConfig::default();
//! let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
//!
//! // Ranked, certainty-tunable resolution.
//! let resolution = pipeline.resolve(&generated.dataset, &config);
//! let confident = resolution.at_certainty(1.0).count();
//! let everything = resolution.at_certainty(f64::MIN).count();
//! assert!(confident <= everything);
//! ```

pub use yv_adt as adt;
pub use yv_baselines as baselines;
pub use yv_blocking as blocking;
pub use yv_core as core;
pub use yv_datagen as datagen;
pub use yv_eval as eval;
pub use yv_fuzzy as fuzzy;
pub use yv_mfi as mfi;
pub use yv_obs as obs;
pub use yv_records as records;
pub use yv_similarity as similarity;
pub use yv_store as store;

/// The most commonly used items in one import.
pub mod prelude {
    pub use yv_blocking::{mfi_blocks, MfiBlocksConfig, ScoreFunction};
    pub use yv_core::{
        Condition, Granularity, PersonQuery, Pipeline, PipelineConfig, RankedMatch, Resolution,
    };
    pub use yv_datagen::{
        full_set, italy_set, random_set, tag_pairs, ExpertTag, GenConfig, Generated,
    };
    pub use yv_records::{
        Dataset, DateParts, Gender, GeoPoint, Place, PlaceType, Record, RecordBuilder, RecordId,
        Source, SourceId,
    };
    pub use yv_similarity::{extract, jaro_winkler, FeatureVector, FEATURES, FEATURE_COUNT};
    pub use yv_store::{Store, StoreError};
}
