//! The paper's running example (Section 1): the three victim reports for
//! Guido Foa of Turin — one of which spells the surname *Foy* and lists a
//! different permanent residence — plus unrelated records, resolved into
//! ranked match candidates.
//!
//! The example shows why a crisp `first = Guido AND last = Foa` query
//! misses the third report, and how the fuzzy query plus the resolved
//! entity surface it.
//!
//! ```text
//! cargo run --example guido_foa --release
//! ```

use yad_vashem_er::prelude::*;

/// Build the three reports of Table 1 plus a few distractors.
fn table1_dataset() -> Dataset {
    let mut ds = Dataset::new();
    let list_a = ds.add_source(Source::list(SourceId(0), "deportation list, Italy"));
    let testimony =
        ds.add_source(Source::testimony(SourceId(0), "Massimo", "Foa", "Cuorgne"));
    let list_b = ds.add_source(Source::list(SourceId(0), "camp registration cards"));
    let turin = Place::full("Torino", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69));
    let turin_en = Place::full("Turin", "Torino", "Piemonte", "Italy", GeoPoint::new(45.07, 7.69));
    let canischio =
        Place::full("Canischio", "Torino", "Piemonte", "Italy", GeoPoint::new(45.38, 7.60));

    // BookID 1016196: Guido Foa the child (born 1936) — a *different*
    // person sharing the name.
    ds.add_record(
        RecordBuilder::new(1_016_196, list_a)
            .first_name("Guido")
            .last_name("Foa")
            .gender(Gender::Male)
            .birth(DateParts::full(2, 8, 1936))
            .place(PlaceType::Birth, turin.clone())
            .place(PlaceType::Permanent, turin.clone())
            .mother_name("Estela")
            .father_name("Italo")
            .build(),
    );
    // BookID 1059654: Guido Foa born 18/11/1920, died in Auschwitz.
    ds.add_record(
        RecordBuilder::new(1_059_654, testimony)
            .first_name("Guido")
            .last_name("Foa")
            .gender(Gender::Male)
            .birth(DateParts::full(18, 11, 1920))
            .place(PlaceType::Birth, turin.clone())
            .place(PlaceType::Permanent, turin)
            .place(
                PlaceType::Death,
                Place::full("Auschwitz", "Oswiecim", "Krakowskie", "Poland", GeoPoint::new(50.03, 19.18)),
            )
            .spouse_name("Helena")
            .mother_name("Olga")
            .father_name("Donato")
            .build(),
    );
    // BookID 1028769: the "Foy" record a crisp query would miss.
    ds.add_record(
        RecordBuilder::new(1_028_769, list_b)
            .first_name("Guido")
            .last_name("Foy")
            .gender(Gender::Male)
            .birth(DateParts::full(18, 11, 1920))
            .place(PlaceType::Birth, turin_en)
            .place(PlaceType::Permanent, canischio)
            .mother_name("Olga")
            .father_name("Donato")
            .build(),
    );
    // Distractors.
    for (i, (first, last)) in
        [("Moshe", "Kesler"), ("Avraham", "Postel"), ("Giulia", "Capelluto")].iter().enumerate()
    {
        ds.add_record(
            RecordBuilder::new(2_000_000 + i as u64, list_a)
                .first_name(*first)
                .last_name(*last)
                .build(),
        );
    }
    ds
}

fn main() {
    let ds = table1_dataset();

    // Score every pair with the 48-feature extractor + a hand-set model?
    // No — train on nothing; instead use blocking + feature inspection to
    // rank, as the deployed system does before the classifier is fitted.
    let blocked = mfi_blocks(
        &ds,
        &MfiBlocksConfig { prune_common: None, prune_frequent: None, ..MfiBlocksConfig::default() },
    );
    println!("Candidate pairs from MFIBlocks:");
    for &(a, b) in &blocked.candidate_pairs {
        let (ra, rb) = (ds.record(a), ds.record(b));
        println!(
            "  BookID {} <-> BookID {}  (shared block keys: {})",
            ra.book_id,
            rb.book_id,
            blocked
                .blocks
                .iter()
                .filter(|blk| blk.records.contains(&a) && blk.records.contains(&b))
                .count()
        );
    }

    // Inspect the decisive features for the two 1920-born records vs. the
    // 1936-born child.
    let fv_same = extract(ds.record(RecordId(1)), ds.record(RecordId(2)));
    let fv_child = extract(ds.record(RecordId(0)), ds.record(RecordId(1)));
    println!("\nFeature evidence (1059654 vs 1028769 — same person):");
    for (id, v) in fv_same.iter_present().take(12) {
        println!("  {:<16} = {v:.3}", FEATURES[id].name);
    }
    println!("\nFeature evidence (1016196 vs 1059654 — father and son):");
    for (id, v) in fv_child.iter_present().take(12) {
        println!("  {:<16} = {v:.3}", FEATURES[id].name);
    }

    // The fuzzy relative-search query of Section 1.
    let matches = blocked
        .candidate_pairs
        .iter()
        .map(|&(a, b)| RankedMatch::new(a, b, 1.0))
        .collect::<Vec<_>>();
    let resolution = Resolution::new(matches, vec![]);
    let query = PersonQuery {
        first_name: Some("Guido".into()),
        last_name: Some("Foa".into()),
        ..PersonQuery::default()
    };
    println!("\nQuery first=Guido last=Foa:");
    for hit in query.run(&ds, &resolution) {
        let books: Vec<u64> =
            hit.entity.iter().map(|&r| ds.record(r).book_id).collect();
        println!(
            "  seed BookID {} resolves to entity {books:?}",
            ds.record(hit.seed).book_id
        );
    }
    println!(
        "\nNote how BookID 1028769 (surname 'Foy') is reachable through the\n\
         entity of 1059654 even though it never matches the crisp query."
    );
}
