//! Quickstart: generate a multi-source dataset, block it with MFIBlocks,
//! train the ADT classifier on expert-tagged pairs, and resolve entities
//! at two certainty levels.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use yad_vashem_er::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the Names Project data: 2,000 victim
    //    reports over six communities, with ground truth attached.
    let generated = GenConfig::random(2_000, 7).generate();
    println!(
        "Generated {} reports describing {} persons ({} true matching pairs)",
        generated.dataset.len(),
        generated.persons.len(),
        generated.gold_pair_count()
    );

    // 2. Soft blocking. Blocks may overlap: a record can sit in several
    //    possible entities at once — that is the "uncertain" in uncertain ER.
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    println!(
        "MFIBlocks: {} blocks, {} candidate pairs, {} mining iterations",
        blocked.blocks.len(),
        blocked.candidate_pairs.len(),
        blocked.stats.iterations
    );

    // 3. Expert tagging (simulated here) and training.
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 1);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
    println!(
        "Trained ADTree with {} splitters over features {:?}",
        pipeline.model.len(),
        pipeline
            .model
            .features_used()
            .iter()
            .map(|&f| FEATURES[f].name)
            .collect::<Vec<_>>()
    );

    // 4. Ranked resolution: no crisp decision is taken; the caller picks
    //    the certainty at query time.
    let resolution = pipeline.resolve(&generated.dataset, &config);
    for certainty in [2.0, 0.0, -1.0] {
        let entities = resolution.entities(certainty);
        let records: usize = entities.iter().map(Vec::len).sum();
        println!(
            "certainty >= {certainty:>4}: {} multi-record entities covering {} records",
            entities.len(),
            records
        );
    }

    // 5. How good is the default (sign-rule) answer against ground truth?
    let crisp: Vec<_> = resolution.crisp_matches().collect();
    let correct = crisp.iter().filter(|m| generated.is_match(m.a, m.b)).count();
    println!(
        "Crisp matches: {} of {} agree with ground truth ({:.1}%)",
        correct,
        crisp.len(),
        100.0 * correct as f64 / crisp.len().max(1) as f64
    );
}
