//! Relative search with a certainty knob — the Web-query scenario of
//! Section 4.2: "a person searching for perished relatives can control the
//! size of the response by tuning a certainty parameter".
//!
//! ```text
//! cargo run --example relative_search --release [-- <first> <last>]
//! ```

use yad_vashem_er::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // A reduced Italy-like set so the example runs in seconds.
    let generated = GenConfig {
        n_records: 3_000,
        mv: Some(yad_vashem_er::datagen::MvConfig { n_reports: 400 }),
        ..GenConfig::italy(11)
    }
    .generate();

    // Default query: the most-reported person in the dataset, so the
    // search always has something to find; override from the command line.
    let (first, last) = match args.as_slice() {
        [f, l, ..] => (f.clone(), l.clone()),
        _ => {
            let mut counts = std::collections::HashMap::new();
            for rid in generated.dataset.record_ids() {
                *counts.entry(generated.person_of(rid)).or_insert(0usize) += 1;
            }
            let (&pid, _) = counts.iter().max_by_key(|(_, &c)| c).expect("non-empty");
            let p = &generated.persons[pid.0 as usize];
            (p.first_name.clone(), p.last_name.clone())
        }
    };
    println!("Searching {} reports for {first} {last}\n", generated.dataset.len());

    // Train the ranker on oracle-tagged blocking output.
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 3);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
    let resolution = pipeline.resolve(&generated.dataset, &config);

    // The certainty knob: tighter settings return fewer, surer entities.
    for certainty in [1.5, 0.0, -1.0] {
        let query = PersonQuery {
            first_name: Some(first.clone()),
            last_name: Some(last.clone()),
            certainty,
            ..PersonQuery::default()
        };
        let hits = query.run(&generated.dataset, &resolution);
        let multi = hits.iter().filter(|h| h.entity.len() > 1).count();
        println!("certainty >= {certainty:>4}: {} hits ({multi} resolve to multi-report entities)", hits.len());
        for hit in hits.iter().take(3) {
            let seed = generated.dataset.record(hit.seed);
            println!(
                "    BookID {:>8}  {} {}  -> entity of {} report(s)",
                seed.book_id,
                seed.first_names.join("/"),
                seed.last_names.join("/"),
                hit.entity.len()
            );
            for &rid in hit.entity.iter().take(4) {
                if rid == hit.seed {
                    continue;
                }
                let r = generated.dataset.record(rid);
                let verdict = if generated.is_match(hit.seed, rid) { "same person" } else { "FALSE MATCH" };
                println!(
                    "        also BookID {:>8}  {} {}  [{verdict}]",
                    r.book_id,
                    r.first_names.join("/"),
                    r.last_names.join("/")
                );
            }
        }
    }
    println!(
        "\nLoosening certainty surfaces more candidate relatives at the cost\n\
         of occasional false merges — the uncertain-ER trade-off the paper\n\
         leaves to the person at the keyboard."
    );
}
