//! A live archive: bootstrap the resolver on the existing collection,
//! then stream newly arriving Pages of Testimony through the incremental
//! resolver and answer probabilistic same-as queries — the deployment
//! scenario of Section 7 ("Yad Vashem is actively engaged in integrating
//! the results of the project into its databases").
//!
//! ```text
//! cargo run --example live_archive --release
//! ```

use yad_vashem_er::core::{IncrementalConfig, IncrementalResolver, PlattCalibration, SameAsStore};
use yad_vashem_er::prelude::*;

fn main() {
    // The archive as of "today": 1,200 reports. The generator gives us
    // ground truth so the stream below can be honest about what arrived.
    let generated = GenConfig::random(1_600, 47).generate();
    let n_total = generated.dataset.len();
    let n_bootstrap = 1_200.min(n_total);

    // Split: the first 1,200 records form the existing archive, the rest
    // arrive later.
    let mut archive = Dataset::new();
    for source in generated.dataset.sources() {
        archive.add_source(source.clone());
    }
    for i in 0..n_bootstrap {
        archive.add_record(generated.dataset.record(RecordId(i as u32)).clone());
    }

    // Train on the archive.
    let config = PipelineConfig { classify: true, ..PipelineConfig::default() };
    let blocked = mfi_blocks(&archive, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 12);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&archive, &labelled, &config);

    // Calibrate scores into probabilities on the same labelled pairs.
    let samples: Vec<(f64, bool)> = labelled
        .iter()
        .map(|&(a, b, y)| (pipeline.score_pair(&archive, a, b), y))
        .collect();
    let calibration = PlattCalibration::fit(&samples);
    println!(
        "Bootstrap: {n_bootstrap} records, {} training pairs, calibration σ({:.2}·s + {:.2})",
        labelled.len(),
        calibration.a,
        calibration.b
    );

    let mut resolver = IncrementalResolver::bootstrap(
        archive,
        pipeline,
        config,
        IncrementalConfig::default(),
    );

    // Stream the remaining reports.
    let mut arrivals = 0;
    let mut matched_arrivals = 0;
    let mut store = SameAsStore::from_matches(&resolver.resolution().matches, &calibration);
    for i in n_bootstrap..n_total {
        let record = generated.dataset.record(RecordId(i as u32)).clone();
        let new_matches = resolver.insert(record);
        arrivals += 1;
        if !new_matches.is_empty() {
            matched_arrivals += 1;
            for m in &new_matches {
                store.insert(m.a, m.b, calibration.probability(m.score));
            }
        }
    }
    println!(
        "Streamed {arrivals} arriving reports; {matched_arrivals} matched existing records \
         ({} uncertain same-as edges stored)",
        store.len()
    );

    // Probabilistic same-as queries over the store.
    let entities = store.most_likely_entities();
    println!("Most-likely world: {} multi-report entities", entities.len());
    if let Some(entity) = entities.iter().find(|e| e.len() >= 3) {
        println!("\nA {}-report entity under possible-worlds semantics:", entity.len());
        for window in entity.windows(2) {
            let p = store.same_entity_probability(window[0], window[1], 2_000, 99);
            let truth = generated.is_match(window[0], window[1]);
            println!(
                "  P(same person | all evidence)({:?}, {:?}) ≈ {p:.3}   [ground truth: {}]",
                window[0],
                window[1],
                if truth { "same" } else { "different" }
            );
        }
    }
}
