//! From reports to narratives — the project's end goal (Section 1): merge
//! each resolved entity's reports into a consolidated profile, build the
//! Figure 2-style knowledge graph, and render a short narrative that keeps
//! source disagreements visible.
//!
//! ```text
//! cargo run --example narratives --release
//! ```

use yad_vashem_er::core::{KnowledgeGraph, PersonProfile};
use yad_vashem_er::prelude::*;

fn main() {
    let generated = GenConfig::random(1_500, 29).generate();
    let config = PipelineConfig::default();
    let blocked = mfi_blocks(&generated.dataset, &config.blocking);
    let tags = tag_pairs(&generated, &blocked.candidate_pairs, 4);
    let labelled: Vec<_> =
        tags.iter().filter_map(|t| t.simplified().map(|m| (t.a, t.b, m))).collect();
    let pipeline = Pipeline::train(&generated.dataset, &labelled, &config);
    let resolution = pipeline.resolve(&generated.dataset, &config);

    let mut entities = resolution.entities(0.5);
    entities.sort_by_key(|e| std::cmp::Reverse(e.len()));
    println!(
        "Resolved {} reports into {} multi-report entities; the three best-attested:\n",
        generated.dataset.len(),
        entities.len()
    );

    for entity in entities.iter().take(3) {
        let profile = PersonProfile::build(&generated.dataset, entity);
        println!("{}", profile.narrative());

        let graph = KnowledgeGraph::from_profile(&profile);
        println!("  knowledge graph ({} edges):", graph.len());
        for (subject, relation, object) in &graph.edges {
            println!("    {subject:?} --{relation:?}--> {object:?}");
        }

        // Is the entity pure? (Only checkable because the data is
        // synthetic; Massimo Foa had to write a book to validate his.)
        let persons: std::collections::HashSet<_> =
            entity.iter().map(|&r| generated.person_of(r)).collect();
        println!(
            "  ground truth: {} report(s) describing {} real person(s)\n",
            entity.len(),
            persons.len()
        );
    }

    // Submitter resolution (the Section 7 open problem): how much does the
    // 514,251-submitters figure deflate under fuzzy resolution?
    let clusters = yad_vashem_er::core::resolve_submitters(
        &generated.dataset,
        &yad_vashem_er::core::SubmitterResolutionConfig::default(),
    );
    let raw = generated.dataset.sources().iter().filter(|s| s.is_testimony()).count();
    println!(
        "Submitter resolution: {raw} raw testimony submitters resolve to {} clusters",
        clusters.len()
    );
}
