//! Family-granularity resolution — the Capelluto example of Section 6.5.
//!
//! Siblings are false positives for *person*-level ER (Elsa, Giulia and
//! Alberto Capelluto are three different children), yet exactly what a
//! researcher reconstructing *family* narratives wants grouped. This
//! example resolves the same dataset at both granularities and prints a
//! small narrative per family entity.
//!
//! ```text
//! cargo run --example family_narratives --release
//! ```

use std::collections::HashMap;
use yad_vashem_er::prelude::*;

fn resolve_pairs(generated: &Generated, granularity: Granularity) -> Vec<(RecordId, RecordId)> {
    let blocking = granularity.blocking();
    mfi_blocks(&generated.dataset, &blocking).candidate_pairs
}

fn main() {
    let generated = GenConfig::random(1_500, 19).generate();
    println!(
        "{} reports, {} persons in {} families\n",
        generated.dataset.len(),
        generated.persons.len(),
        generated
            .persons
            .iter()
            .map(|p| p.family)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );

    for granularity in [Granularity::Person, Granularity::Family] {
        let pairs = resolve_pairs(&generated, granularity);
        let person_hits = pairs.iter().filter(|&&(a, b)| generated.is_match(a, b)).count();
        let family_hits = pairs.iter().filter(|&&(a, b)| generated.same_family(a, b)).count();
        println!(
            "{granularity:?} blocking: {} candidate pairs — {:.0}% same-person, {:.0}% same-family",
            pairs.len(),
            100.0 * person_hits as f64 / pairs.len().max(1) as f64,
            100.0 * family_hits as f64 / pairs.len().max(1) as f64,
        );
    }

    // Build family entities from the loose setting and narrate the largest.
    let pairs = resolve_pairs(&generated, Granularity::Family);
    let matches: Vec<RankedMatch> = pairs
        .iter()
        .filter(|&&(a, b)| generated.same_family(a, b)) // family oracle as ranker stand-in
        .map(|&(a, b)| RankedMatch::new(a, b, 1.0))
        .collect();
    let resolution = Resolution::new(matches, vec![]);
    let mut entities = resolution.entities(Granularity::Family.default_certainty());
    entities.sort_by_key(|e| std::cmp::Reverse(e.len()));

    println!("\nLargest reconstructed family entities:");
    for entity in entities.iter().take(3) {
        // Collect the narrative ingredients.
        let mut names: HashMap<String, usize> = HashMap::new();
        let mut surname = String::new();
        let mut place = String::new();
        for &rid in entity {
            let r = generated.dataset.record(rid);
            if let Some(l) = r.last_names.first() {
                surname = l.clone();
            }
            for f in &r.first_names {
                *names.entry(f.clone()).or_insert(0) += 1;
            }
            if let Some(p) = r.place(PlaceType::Permanent).and_then(|p| p.city.clone()) {
                place = p;
            }
        }
        let mut members: Vec<(String, usize)> = names.into_iter().collect();
        members.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let list: Vec<String> = members.iter().take(5).map(|(n, _)| n.clone()).collect();
        println!(
            "  The {surname} family of {place}: {} reports mentioning {}",
            entity.len(),
            list.join(", ")
        );
    }
    println!(
        "\nAt person granularity these sibling pairs would be false positives;\n\
         at family granularity they are the narrative (Figure 13's Capelluto\n\
         children)."
    );
}
